// Package wire is the length-prefixed binary codec the cluster
// transport speaks between a serving front end (internal/cluster.Router
// inside cmd/serve -cluster) and shardd worker processes (cmd/shardd).
//
// Every frame is a little-endian uint32 body length followed by the
// body: one kind byte and a kind-specific payload. Payload scalars are
// little-endian fixed width; strings carry a uint32 length; float
// slices carry a uint32 count followed by IEEE-754 bits. The choice is
// deliberately boring — a replayable, inspectable framing with no
// reflection and no per-field names, because the hot message (a
// one-second two-channel sample batch) is ~4 KB of floats and the
// encoder must not shred it into garbage.
//
// The protocol is versioned by the Hello exchange: both sides send
// KindHello carrying Version first and refuse a peer that disagrees,
// so field-order changes here only require bumping Version.
//
// Client → shard: Hello, Push, Confirm, StatsReq, Ping, ModelGet,
// ModelPut (failover checkpoint transfer), PrefilterDecl, PushDigest,
// AuditPush (edge prefilter, v5).
// Shard → client: Hello, Event, Stats, Pong, ModelPut (ModelGet reply),
// ModelAnnounce, AuditRequest (v5).
// Shard → shard: Hello, ModelPut (checkpoint replication).
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"selflearn/internal/serve"
)

// Version is the protocol revision exchanged in Hello frames. Bump it
// on any change to frame layout (including serve.Stats gaining fields).
//
// v2: Event frames carry the model Version; ModelGet / ModelPut /
// ModelAnnounce frames added for checkpoint replication and warm
// failover.
//
// v3: Event frames carry StreamTime (deterministic alarm time for
// replay scoring); Stats frames carry QualityRejected (quality
// prefilter refusals).
//
// v4: PushQ frames added — a quantized int16 sample batch used only
// when the samples round-trip bitwise (ADC-grid data), at a quarter of
// the float payload. v4 is additive: the Hello exchange negotiates the
// effective version down to min(ours, peer's), so a v4 sender facing a
// v3 peer simply keeps sending float Push frames.
//
// v5: the edge/cloud prefilter split — PrefilterDecl announces a
// stream's client-side stage-1 gate, PushDigest summarizes suppressed
// spans, AuditPush ships a sampled suppressed window at full rate for
// shard-side stage-2 audit, and AuditRequest asks the client for such a
// sample; Stats frames gain the suppression/audit counters. v5 is
// additive like v4: a v5 peer facing v4 sends none of these (the
// prefilter methods return ErrVersionGated) and Stats crosses in the v4
// layout, negotiated by the same Hello min-version exchange.
const Version = 5

// MinVersion is the oldest peer protocol revision this build still
// speaks. Everything since v3 is additive, so the negotiated effective
// version is min(Version, peer's) and either side may be newer.
const MinVersion = 3

// MaxFrame bounds a frame body so a corrupt or hostile length prefix
// cannot make the decoder allocate gigabytes. 16 MiB fits >500 s of
// two-channel samples at 1 kHz in one Push — far beyond any real batch.
const MaxFrame = 16 << 20

// ErrFrameTooLarge is returned by Decoder.Next for a frame whose
// declared body exceeds MaxFrame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")

// ErrVersionGated is returned by encoder methods for frames the
// negotiated peer version cannot decode (the v5 prefilter family under
// a v4 peer). Senders treat it as "this peer cannot use the feature" —
// skip, don't fail the connection.
var ErrVersionGated = errors.New("wire: frame kind not supported by negotiated version")

// Kind discriminates frame bodies.
type Kind uint8

const (
	kindInvalid Kind = iota
	// KindHello opens a connection in both directions: payload is the
	// protocol Version.
	KindHello
	// KindPush carries one patient's sample batch: patient, then the
	// two synchronized channels.
	KindPush
	// KindConfirm carries a patient's seizure confirmation.
	KindConfirm
	// KindEvent carries one serve.Event from shard to client.
	KindEvent
	// KindStatsReq asks the shard for a stats snapshot; Token correlates
	// the KindStats reply.
	KindStatsReq
	// KindStats is the snapshot reply: Token, then serve.Stats.
	KindStats
	// KindPing and KindPong are the health probe; Pong echoes the
	// ping's Token.
	KindPing
	KindPong
	// KindModelGet asks the peer for a patient's current model
	// checkpoint; Token correlates the KindModelPut reply.
	KindModelGet
	// KindModelPut carries one versioned model checkpoint (the JSON
	// forest interchange format). It flows shard→shard as a replication
	// push, client→shard as a failover transfer, and shard→client as
	// the ModelGet reply — where ModelVersion 0 with an empty payload
	// means "no model". The payload is capped by MaxFrame like every
	// frame body; forest checkpoints are a few hundred KB at most.
	KindModelPut
	// KindModelAnnounce advertises that the sender now serves a patient
	// at a model version, without the checkpoint payload — how routers
	// keep their per-patient version tables current.
	KindModelAnnounce
	// KindPushQ (v4) carries one patient's sample batch quantized to
	// uint16 steps on a per-channel affine grid: patient, then per
	// channel an offset and power-of-two scale (float64 each), a uint32
	// count, and count little-endian uint16 codes. The encoder emits it
	// only when every sample reconstructs bitwise as offset+code*scale —
	// true for ADC-grid data, where the frame is ~4× smaller than Push —
	// and falls back to Push otherwise, so decoding is always lossless
	// and decisions are identical to the float frame's.
	KindPushQ
	// KindPrefilterDecl (v5) announces a stream's client-side stage-1
	// prefilter at stream open: patient, then the gate's trigger factor
	// (float64), baseline history length, proactive audit sampling
	// period, and drift threshold (uint32 each). The shard arms its
	// audit mirror from this declaration.
	KindPrefilterDecl
	// KindPushDigest (v5) summarizes a span of suppressed windows
	// instead of their full samples: patient, window count (uint32),
	// then the span's sum/min/max mean-absolute-amplitude (float64
	// each) — ~40 bytes standing in for up to a minute of full-rate
	// batches, the frame that delivers the 100–1000x uplink reduction.
	KindPushDigest
	// KindAuditPush (v5) ships one suppressed window at full rate for
	// shard-side stage-2 audit replay: same layout as Push. The window
	// stays suppressed (it is covered by the digest that precedes it);
	// the shard only checks whether stage 2 agrees it was droppable.
	KindAuditPush
	// KindAuditRequest (v5) asks a prefiltering client to ship its next
	// suppressed window as an AuditPush: patient. Sent by shards when a
	// stream that declared no proactive sampling runs unaudited.
	KindAuditRequest
)

// String names the kind for logs and errors.
func (k Kind) String() string {
	switch k {
	case KindHello:
		return "hello"
	case KindPush:
		return "push"
	case KindConfirm:
		return "confirm"
	case KindEvent:
		return "event"
	case KindStatsReq:
		return "stats-req"
	case KindStats:
		return "stats"
	case KindPing:
		return "ping"
	case KindPong:
		return "pong"
	case KindModelGet:
		return "model-get"
	case KindModelPut:
		return "model-put"
	case KindModelAnnounce:
		return "model-announce"
	case KindPushQ:
		return "push-q"
	case KindPrefilterDecl:
		return "prefilter-decl"
	case KindPushDigest:
		return "push-digest"
	case KindAuditPush:
		return "audit-push"
	case KindAuditRequest:
		return "audit-request"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Msg is one decoded frame. Kind selects which fields are meaningful;
// the rest are zero.
type Msg struct {
	Kind         Kind
	Version      uint32                // Hello
	Patient      string                // Push, Confirm, ModelGet, ModelPut, ModelAnnounce, prefilter family
	C0, C1       []float64             // Push, AuditPush
	Event        serve.Event           // Event
	Stats        serve.Stats           // Stats
	Token        uint64                // StatsReq, Stats, Ping, Pong, ModelGet, ModelPut
	ModelVersion uint64                // ModelPut, ModelAnnounce
	Model        []byte                // ModelPut: JSON forest checkpoint (empty = no model)
	Prefilter    serve.PrefilterConfig // PrefilterDecl
	Digest       serve.Digest          // PushDigest
}

// Encoder writes frames through an internal bufio.Writer. It is not
// safe for concurrent use; connection owners serialize writers with a
// mutex. Flush must be called when the caller wants buffered frames on
// the wire (senders flush when their queue goes idle).
type Encoder struct {
	w       *bufio.Writer
	buf     []byte
	version uint32   // negotiated peer version; gates v4+ frames
	q0, q1  []uint16 // Push quantization scratch, reused per frame
	written uint64   // total framed bytes (header + body), for uplink accounting
}

// NewEncoder returns an encoder framing onto w. Until SetVersion is
// called after the Hello exchange, the encoder assumes a same-version
// peer.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: bufio.NewWriterSize(w, 64<<10), version: Version}
}

// SetVersion records the negotiated protocol version — min(Version,
// peer's Hello) — after the handshake. Frames newer than the peer
// (PushQ under v3) are then silently replaced with their older
// equivalents.
func (e *Encoder) SetVersion(v uint32) {
	if v > Version {
		v = Version
	}
	e.version = v
}

// Flush pushes buffered frames to the underlying writer.
func (e *Encoder) Flush() error { return e.w.Flush() }

func (e *Encoder) appendU8(v uint8)   { e.buf = append(e.buf, v) }
func (e *Encoder) appendU32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *Encoder) appendU64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *Encoder) appendI64(v int64)  { e.appendU64(uint64(v)) }
func (e *Encoder) appendF64(v float64) {
	e.appendU64(math.Float64bits(v))
}

func (e *Encoder) appendString(s string) {
	e.appendU32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// grow extends the scratch body by n bytes in one step and returns the
// new region — the bulk-append primitive under the float and uint16
// payload writers, replacing per-element append growth checks.
func (e *Encoder) grow(n int) []byte {
	if cap(e.buf) < len(e.buf)+n {
		grown := make([]byte, len(e.buf), 2*len(e.buf)+n)
		copy(grown, e.buf)
		e.buf = grown
	}
	b := e.buf[len(e.buf) : len(e.buf)+n]
	e.buf = e.buf[:len(e.buf)+n]
	return b
}

func (e *Encoder) appendFloats(xs []float64) {
	e.appendU32(uint32(len(xs)))
	b := e.grow(8 * len(xs))
	for i := 0; len(b) >= 8; i++ {
		binary.LittleEndian.PutUint64(b, math.Float64bits(xs[i]))
		b = b[8:]
	}
}

func (e *Encoder) appendU16s(qs []uint16) {
	e.appendU32(uint32(len(qs)))
	b := e.grow(2 * len(qs))
	for i := 0; len(b) >= 2; i++ {
		binary.LittleEndian.PutUint16(b, qs[i])
		b = b[2:]
	}
}

func (e *Encoder) appendBytes(b []byte) {
	e.appendU32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// begin resets the scratch body and stamps the kind byte.
func (e *Encoder) begin(k Kind) {
	e.buf = e.buf[:0]
	e.appendU8(uint8(k))
}

// frame writes the pending body as one length-prefixed frame. The
// scratch buffer is reused across frames, so steady-state encoding
// allocates nothing once it has grown to the largest batch.
func (e *Encoder) frame() error {
	if len(e.buf) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(e.buf)))
	if _, err := e.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := e.w.Write(e.buf)
	if err == nil {
		e.written += uint64(4 + len(e.buf))
	}
	return err
}

// BytesWritten returns the total framed bytes (headers + bodies) this
// encoder has emitted — the exact bytes-on-the-wire accounting behind
// uplink-reduction measurements. Not synchronized; read it where the
// encoder is owned (connection writers hold their write mutex).
func (e *Encoder) BytesWritten() uint64 { return e.written }

// Hello writes the version-exchange frame.
func (e *Encoder) Hello() error {
	e.begin(KindHello)
	e.appendU32(Version)
	return e.frame()
}

// Push writes one sample batch frame. Against a v4 peer it first tries
// the quantized PushQ layout — emitted only when every sample in both
// channels reconstructs bitwise from its uint16 code, so the receiver
// always recovers the exact float64 stream and downstream decisions
// cannot drift. Data that doesn't sit on an affine uint16 grid (or a v3
// peer) gets the float frame, unchanged since v1.
//
//selflearn:hotpath
func (e *Encoder) Push(patient string, c0, c1 []float64) error {
	if e.version >= 4 {
		if cap(e.q0) < len(c0) {
			e.q0 = make([]uint16, len(c0))
		}
		if cap(e.q1) < len(c1) {
			e.q1 = make([]uint16, len(c1))
		}
		o0, s0, ok := quantizeChannel(e.q0[:len(c0)], c0)
		if ok {
			o1, s1, ok := quantizeChannel(e.q1[:len(c1)], c1)
			if ok {
				e.begin(KindPushQ)
				e.appendString(patient)
				e.appendF64(o0)
				e.appendF64(s0)
				e.appendU16s(e.q0[:len(c0)])
				e.appendF64(o1)
				e.appendF64(s1)
				e.appendU16s(e.q1[:len(c1)])
				return e.frame()
			}
		}
	}
	e.begin(KindPush)
	e.appendString(patient)
	e.appendFloats(c0)
	e.appendFloats(c1)
	return e.frame()
}

// quantizeChannel tries to express xs exactly as offset + code*scale
// with uint16 codes and a power-of-two scale, writing the codes into
// dst (len(dst) == len(xs)). ok reports whether EVERY sample
// reconstructs to its original bit pattern — the gate that keeps PushQ
// lossless; the caller falls back to the float layout otherwise. A
// power-of-two scale makes the check succeed for any data on an ADC
// grid (integer counts times a power-of-two LSB), which is what
// wearable front ends actually emit.
//
//selflearn:hotpath
func quantizeChannel(dst []uint16, xs []float64) (offset, scale float64, ok bool) {
	if len(xs) == 0 {
		return 0, 1, true
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x != x {
			return 0, 0, false
		}
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	span := hi - lo
	if math.IsInf(span, 0) {
		return 0, 0, false
	}
	scale = 1.0
	if span > 0 {
		// Smallest power of two ≥ span/65535, via Frexp (span/65535 =
		// frac·2^exp with frac ∈ [0.5, 1)).
		frac, exp := math.Frexp(span / 65535)
		scale = math.Ldexp(1, exp)
		if frac == 0.5 {
			scale = math.Ldexp(1, exp-1)
		}
	}
	for i, x := range xs {
		c := math.Floor((x-lo)/scale + 0.5)
		if c < 0 || c > 65535 || math.Float64bits(lo+c*scale) != math.Float64bits(x) {
			return 0, 0, false
		}
		dst[i] = uint16(c)
	}
	return lo, scale, true
}

// Confirm writes one confirmation frame.
//
//selflearn:hotpath
func (e *Encoder) Confirm(patient string) error {
	e.begin(KindConfirm)
	e.appendString(patient)
	return e.frame()
}

// Event writes one event frame. The error (if any) crosses as its
// message string.
//
//selflearn:hotpath
func (e *Encoder) Event(ev serve.Event) error {
	e.begin(KindEvent)
	e.appendU8(uint8(ev.Kind))
	e.appendString(ev.Patient)
	e.appendI64(ev.Time.UnixNano())
	e.appendU64(ev.Seq)
	e.appendU64(ev.Version)
	e.appendF64(ev.StreamTime)
	msg := ""
	if ev.Err != nil {
		msg = ev.Err.Error()
	}
	e.appendString(msg)
	return e.frame()
}

// PrefilterDecl writes a stream's stage-1 prefilter declaration.
// Returns ErrVersionGated against a pre-v5 peer — the caller then
// simply does not prefilter toward that peer.
func (e *Encoder) PrefilterDecl(patient string, cfg serve.PrefilterConfig) error {
	if e.version < 5 {
		return ErrVersionGated
	}
	e.begin(KindPrefilterDecl)
	e.appendString(patient)
	e.appendF64(cfg.Gate.Factor)
	e.appendU32(uint32(cfg.Gate.HistoryWindows))
	e.appendU32(uint32(cfg.AuditEvery))
	e.appendU32(uint32(cfg.DriftThreshold))
	return e.frame()
}

// PushDigest writes one suppressed-span digest. Returns ErrVersionGated
// against a pre-v5 peer.
//
//selflearn:hotpath
func (e *Encoder) PushDigest(patient string, d serve.Digest) error {
	if e.version < 5 {
		return ErrVersionGated
	}
	e.begin(KindPushDigest)
	e.appendString(patient)
	e.appendU32(d.Windows)
	e.appendF64(d.SumAmp)
	e.appendF64(d.MinAmp)
	e.appendF64(d.MaxAmp)
	return e.frame()
}

// AuditPush writes one audit-sampled suppressed window at full rate —
// the Push layout under its own kind so the shard replays it through
// stage 2 instead of the patient's live feature stream. Returns
// ErrVersionGated against a pre-v5 peer.
//
//selflearn:hotpath
func (e *Encoder) AuditPush(patient string, c0, c1 []float64) error {
	if e.version < 5 {
		return ErrVersionGated
	}
	e.begin(KindAuditPush)
	e.appendString(patient)
	e.appendFloats(c0)
	e.appendFloats(c1)
	return e.frame()
}

// AuditRequest asks a prefiltering client for an audit sample. Returns
// ErrVersionGated against a pre-v5 peer.
func (e *Encoder) AuditRequest(patient string) error {
	if e.version < 5 {
		return ErrVersionGated
	}
	e.begin(KindAuditRequest)
	e.appendString(patient)
	return e.frame()
}

// ModelGet writes a model request carrying a correlation token.
func (e *Encoder) ModelGet(token uint64, patient string) error {
	e.begin(KindModelGet)
	e.appendU64(token)
	e.appendString(patient)
	return e.frame()
}

// ModelPut writes one versioned model checkpoint. As a ModelGet reply,
// token echoes the request's; unsolicited pushes (replication, failover
// transfer) use token 0. A checkpoint larger than MaxFrame is refused
// with ErrFrameTooLarge rather than shredded — the model is then simply
// not replicated, which the monotonic install path tolerates.
func (e *Encoder) ModelPut(token uint64, patient string, version uint64, checkpoint []byte) error {
	e.begin(KindModelPut)
	e.appendU64(token)
	e.appendString(patient)
	e.appendU64(version)
	e.appendBytes(checkpoint)
	return e.frame()
}

// ModelAnnounce writes a payload-free model version advertisement.
func (e *Encoder) ModelAnnounce(patient string, version uint64) error {
	e.begin(KindModelAnnounce)
	e.appendString(patient)
	e.appendU64(version)
	return e.frame()
}

// StatsReq writes a stats request carrying a correlation token.
func (e *Encoder) StatsReq(token uint64) error {
	e.begin(KindStatsReq)
	e.appendU64(token)
	return e.frame()
}

// Stats writes a stats reply. Fields cross in serve.Stats declaration
// order; adding a field there requires appending here, in decodeStats,
// and bumping Version — with the new fields gated on the negotiated
// version (and the decoder's SetVersion) so Stats frames keep crossing
// to older peers in the layout they expect.
func (e *Encoder) Stats(token uint64, st serve.Stats) error {
	e.begin(KindStats)
	e.appendU64(token)
	e.appendI64(int64(st.Sessions))
	e.appendI64(int64(st.StreamsOpen))
	e.appendU64(st.SessionsCreated)
	e.appendU64(st.SessionsEvicted)
	e.appendU64(st.Batches)
	e.appendU64(st.BatchesDropped)
	e.appendU64(st.BatchesShed)
	e.appendU64(st.QualityRejected)
	e.appendU64(st.Windows)
	e.appendF64(st.WindowsPerSec)
	e.appendU64(st.Alarms)
	e.appendU64(st.Confirms)
	e.appendU64(st.ConfirmsRejected)
	e.appendU64(st.ConfirmsDropped)
	e.appendU64(st.Retrains)
	e.appendU64(st.RetrainErrors)
	e.appendU64(st.StreamErrors)
	e.appendI64(int64(st.ModelsCached))
	e.appendU64(st.StoreErrors)
	if e.version >= 5 {
		e.appendU64(st.WindowsSuppressed)
		e.appendU64(st.AuditSamples)
		e.appendU64(st.AuditDisagreements)
		e.appendU64(st.PrefilterDrift)
	}
	e.appendU64(st.EventsDropped)
	e.appendI64(int64(st.QueueDepth))
	e.appendI64(int64(st.Uptime))
	return e.frame()
}

// Ping writes a health probe; Pong echoes its token back.
func (e *Encoder) Ping(token uint64) error {
	e.begin(KindPing)
	e.appendU64(token)
	return e.frame()
}

// Pong writes a health probe reply.
func (e *Encoder) Pong(token uint64) error {
	e.begin(KindPong)
	e.appendU64(token)
	return e.frame()
}

// Decoder reads frames from an internal bufio.Reader. Not safe for
// concurrent use; each connection has exactly one read loop.
type Decoder struct {
	r       *bufio.Reader
	buf     []byte
	version uint32 // negotiated peer version; selects the Stats layout
}

// NewDecoder returns a decoder framing off r. Until SetVersion is
// called after the Hello exchange, the decoder assumes a same-version
// peer.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReaderSize(r, 64<<10), version: Version}
}

// SetVersion records the negotiated protocol version after the
// handshake, mirroring Encoder.SetVersion: a v4 peer's Stats frames are
// then decoded in the v4 layout (without the v5 suppression/audit
// counters). Hello frames decode identically at every version, so the
// handshake itself needs no prior SetVersion.
func (d *Decoder) SetVersion(v uint32) {
	if v > Version {
		v = Version
	}
	d.version = v
}

// Next reads and decodes one frame. io.EOF crosses through cleanly on
// a frame boundary; a connection cut mid-frame is io.ErrUnexpectedEOF.
func (d *Decoder) Next() (Msg, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
		return Msg{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return Msg{}, ErrFrameTooLarge
	}
	if cap(d.buf) < int(n) {
		d.buf = make([]byte, n)
	}
	body := d.buf[:n]
	if _, err := io.ReadFull(d.r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Msg{}, err
	}
	return parse(body, d.version)
}

// reader is a bounds-checked cursor over one frame body: the first
// malformed read poisons it, and the caller checks err once at the end.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = errors.New("wire: truncated frame body")
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) i64() int64   { return int64(r.u64()) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *reader) str() string {
	n := r.u32()
	if r.err != nil || r.off+int(n) > len(r.b) {
		r.fail()
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// bytes returns a length-prefixed byte payload. The copy is deliberate:
// the decoder's frame buffer is reused by the next Next call, while
// model checkpoints outlive it (they are parsed or forwarded later).
func (r *reader) bytes() []byte {
	n := r.u32()
	if r.err != nil || r.off+int(n) > len(r.b) {
		r.fail()
		return nil
	}
	b := append([]byte(nil), r.b[r.off:r.off+int(n)]...)
	r.off += int(n)
	return b
}

func (r *reader) floats() []float64 {
	n := r.u32()
	if r.err != nil || r.off+8*int(n) > len(r.b) {
		r.fail()
		return nil
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
		r.off += 8
	}
	return xs
}

// qfloats reads one PushQ channel — offset, scale, then the uint16
// codes — and reconstructs the exact float64 samples the sender
// quantized (the encoder only emits PushQ when offset+code*scale is
// bit-identical to the original for every sample).
func (r *reader) qfloats() []float64 {
	offset := r.f64()
	scale := r.f64()
	n := r.u32()
	if r.err != nil || r.off+2*int(n) > len(r.b) {
		r.fail()
		return nil
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = offset + float64(binary.LittleEndian.Uint16(r.b[r.off:]))*scale
		r.off += 2
	}
	return xs
}

func parse(body []byte, version uint32) (Msg, error) {
	r := &reader{b: body}
	m := Msg{Kind: Kind(r.u8())}
	switch m.Kind {
	case KindHello:
		m.Version = r.u32()
	case KindPush:
		m.Patient = r.str()
		m.C0 = r.floats()
		m.C1 = r.floats()
	case KindPushQ:
		m.Patient = r.str()
		m.C0 = r.qfloats()
		m.C1 = r.qfloats()
	case KindConfirm:
		m.Patient = r.str()
	case KindEvent:
		m.Event.Kind = serve.EventKind(r.u8())
		m.Event.Patient = r.str()
		m.Event.Time = time.Unix(0, r.i64())
		m.Event.Seq = r.u64()
		m.Event.Version = r.u64()
		m.Event.StreamTime = r.f64()
		if msg := r.str(); msg != "" {
			m.Event.Err = errors.New(msg)
		}
	case KindStatsReq, KindPing, KindPong:
		m.Token = r.u64()
	case KindModelGet:
		m.Token = r.u64()
		m.Patient = r.str()
	case KindModelPut:
		m.Token = r.u64()
		m.Patient = r.str()
		m.ModelVersion = r.u64()
		m.Model = r.bytes()
	case KindModelAnnounce:
		m.Patient = r.str()
		m.ModelVersion = r.u64()
	case KindStats:
		m.Token = r.u64()
		m.Stats = decodeStats(r, version)
	case KindPrefilterDecl:
		m.Patient = r.str()
		m.Prefilter.Gate.Factor = r.f64()
		m.Prefilter.Gate.HistoryWindows = int(r.u32())
		m.Prefilter.AuditEvery = int(r.u32())
		m.Prefilter.DriftThreshold = int(r.u32())
	case KindPushDigest:
		m.Patient = r.str()
		m.Digest.Windows = r.u32()
		m.Digest.SumAmp = r.f64()
		m.Digest.MinAmp = r.f64()
		m.Digest.MaxAmp = r.f64()
	case KindAuditPush:
		m.Patient = r.str()
		m.C0 = r.floats()
		m.C1 = r.floats()
	case KindAuditRequest:
		m.Patient = r.str()
	default:
		return Msg{}, fmt.Errorf("wire: unknown frame kind %d", uint8(m.Kind))
	}
	if r.err != nil {
		return Msg{}, fmt.Errorf("wire: %s frame: %w", m.Kind, r.err)
	}
	if r.off != len(body) {
		return Msg{}, fmt.Errorf("wire: %s frame has %d trailing bytes", m.Kind, len(body)-r.off)
	}
	return m, nil
}

func decodeStats(r *reader, version uint32) serve.Stats {
	var st serve.Stats
	st.Sessions = int(r.i64())
	st.StreamsOpen = int(r.i64())
	st.SessionsCreated = r.u64()
	st.SessionsEvicted = r.u64()
	st.Batches = r.u64()
	st.BatchesDropped = r.u64()
	st.BatchesShed = r.u64()
	st.QualityRejected = r.u64()
	st.Windows = r.u64()
	st.WindowsPerSec = r.f64()
	st.Alarms = r.u64()
	st.Confirms = r.u64()
	st.ConfirmsRejected = r.u64()
	st.ConfirmsDropped = r.u64()
	st.Retrains = r.u64()
	st.RetrainErrors = r.u64()
	st.StreamErrors = r.u64()
	st.ModelsCached = int(r.i64())
	st.StoreErrors = r.u64()
	if version >= 5 {
		st.WindowsSuppressed = r.u64()
		st.AuditSamples = r.u64()
		st.AuditDisagreements = r.u64()
		st.PrefilterDrift = r.u64()
	}
	st.EventsDropped = r.u64()
	st.QueueDepth = int(r.i64())
	st.Uptime = time.Duration(r.i64())
	return st
}
