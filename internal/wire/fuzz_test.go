package wire

import (
	"bytes"
	"io"
	"testing"
)

// fuzzSeeds encodes one frame of every kind — the corpus FuzzDecode
// mutates from, so every parse branch (including the model frames) is
// reachable from the seeds. The frames come from the same kindFrames
// table the parity test checks, so the corpus provably covers every
// named kind, plus edge-case frames the canonical table doesn't carry.
func fuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	one := func(fn func(*Encoder) error) []byte {
		var buf bytes.Buffer
		e := NewEncoder(&buf)
		if err := fn(e); err != nil {
			tb.Fatal(err)
		}
		if err := e.Flush(); err != nil {
			tb.Fatal(err)
		}
		return buf.Bytes()
	}
	frames := kindFrames()
	var seeds [][]byte
	for _, k := range allKinds() {
		fn, ok := frames[k]
		if !ok {
			tb.Fatalf("kind %v has no canonical frame in kindFrames; the fuzz corpus would miss it", k)
		}
		seeds = append(seeds, one(fn))
	}
	// Edge cases beyond the canonical frames: the "no model" reply.
	seeds = append(seeds, one(func(e *Encoder) error { return e.ModelPut(0, "chb02", 0, nil) }))
	return seeds
}

// FuzzDecode feeds arbitrary byte streams through the frame decoder: a
// malformed, truncated, or hostile frame must surface as an error —
// never a panic or a runaway allocation — because one bad client frame
// panicking the decoder would take a whole shardd (and every patient it
// serves) down with it.
func FuzzDecode(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	// A multi-frame stream and a hostile length prefix, so mutation
	// starts from the stream-boundary and bounds-check branches too.
	var multi []byte
	for _, seed := range fuzzSeeds(f) {
		multi = append(multi, seed...)
	}
	f.Add(multi)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(bytes.NewReader(data))
		for {
			m, err := d.Next()
			if err != nil {
				// Every error path is acceptable; only panics are bugs.
				return
			}
			// A decoded frame must carry a known kind: parse rejects
			// unknown kind bytes, so anything that got through is one of
			// the declared constants.
			if m.Kind < KindHello || m.Kind > KindAuditRequest {
				t.Fatalf("decoder accepted unknown kind %d", m.Kind)
			}
		}
	})
}

// TestFuzzSeedsDecode pins that every fuzz seed actually decodes — a
// seed rejected by parse would silently fuzz error paths only.
func TestFuzzSeedsDecode(t *testing.T) {
	for i, seed := range fuzzSeeds(t) {
		d := NewDecoder(bytes.NewReader(seed))
		if _, err := d.Next(); err != nil {
			t.Fatalf("seed %d does not decode: %v", i, err)
		}
		if _, err := d.Next(); err != io.EOF {
			t.Fatalf("seed %d has trailing data: %v", i, err)
		}
	}
}
