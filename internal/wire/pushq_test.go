package wire

import (
	"bytes"
	"io"
	"math"
	"testing"
)

// adcBatch synthesizes a batch the way a wearable front end produces
// one: integer ADC counts times a power-of-two LSB volts-per-count,
// plus an arbitrary (exactly representable) baseline offset.
func adcBatch(n int, seed uint64) []float64 {
	const lsb = 1.0 / (1 << 13) // ~122 µV steps on a 16-bit grid
	xs := make([]float64, n)
	state := seed
	for i := range xs {
		state = state*6364136223846793005 + 1442695040888963407
		count := float64((state >> 33) % 4096) // 12-bit ADC
		xs[i] = -0.25 + count*lsb
	}
	return xs
}

// TestPushQLosslessRoundTrip: ADC-grid batches must take the quantized
// layout and decode to bit-identical float64 samples — the property
// that keeps every downstream decision unchanged by the wire format.
func TestPushQLosslessRoundTrip(t *testing.T) {
	c0 := adcBatch(256, 1)
	c1 := adcBatch(256, 2)
	raw := encode(t, func(e *Encoder) error { return e.Push("chb01", c0, c1) })
	m := decodeOne(t, raw)
	if m.Kind != KindPushQ {
		t.Fatalf("ADC-grid batch framed as %v, want push-q", m.Kind)
	}
	if m.Patient != "chb01" || len(m.C0) != len(c0) || len(m.C1) != len(c1) {
		t.Fatalf("push-q = %+v", m)
	}
	for i := range c0 {
		if math.Float64bits(m.C0[i]) != math.Float64bits(c0[i]) {
			t.Fatalf("c0[%d]: decoded %x, sent %x", i, math.Float64bits(m.C0[i]), math.Float64bits(c0[i]))
		}
		if math.Float64bits(m.C1[i]) != math.Float64bits(c1[i]) {
			t.Fatalf("c1[%d]: decoded %x, sent %x", i, math.Float64bits(m.C1[i]), math.Float64bits(c1[i]))
		}
	}
	// The point of the frame: 2 bytes per sample instead of 8.
	if float := encode(t, func(e *Encoder) error {
		e.SetVersion(3)
		return e.Push("chb01", c0, c1)
	}); len(raw) >= len(float)/2 {
		t.Fatalf("push-q frame is %d bytes, float frame %d — expected a large saving", len(raw), len(float))
	}
}

// TestPushQFallsBackToFloat: batches off any uint16 grid must take the
// float layout — quantization is an optimization, never an
// approximation.
func TestPushQFallsBackToFloat(t *testing.T) {
	grid := adcBatch(64, 3)
	offGrid := append([]float64(nil), grid...)
	offGrid[17] += 1e-9 // nudge one sample off the lattice
	cases := []struct {
		name   string
		c0, c1 []float64
	}{
		{"irrational", []float64{math.Pi, math.E, math.Sqrt2}, []float64{1, 2, 3}},
		{"one-sample-off", offGrid, grid},
		{"nan", []float64{1, math.NaN(), 3}, []float64{1, 2, 3}},
		{"inf", []float64{1, math.Inf(1), 3}, []float64{1, 2, 3}},
		{"huge-span", []float64{0, 1e300, -1e300}, []float64{1, 2, 3}},
		{"denormal", []float64{0, 5e-324, 1}, []float64{1, 2, 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := decodeOne(t, encode(t, func(e *Encoder) error { return e.Push("p", tc.c0, tc.c1) }))
			if m.Kind != KindPush {
				t.Fatalf("framed as %v, want the float push fallback", m.Kind)
			}
			for i := range tc.c0 {
				if math.Float64bits(m.C0[i]) != math.Float64bits(tc.c0[i]) {
					t.Fatalf("c0[%d] corrupted in float fallback", i)
				}
			}
		})
	}
}

// TestPushQConstantChannel: a flat channel (sensor railed, lead off)
// is the degenerate grid — span zero, every code zero.
func TestPushQConstantChannel(t *testing.T) {
	c0 := []float64{2.5, 2.5, 2.5, 2.5}
	c1 := []float64{-1, -1, -1, -1}
	m := decodeOne(t, encode(t, func(e *Encoder) error { return e.Push("p", c0, c1) }))
	if m.Kind != KindPushQ {
		t.Fatalf("constant batch framed as %v, want push-q", m.Kind)
	}
	for i := range c0 {
		if m.C0[i] != 2.5 || m.C1[i] != -1 {
			t.Fatalf("constant channels decoded as %v / %v", m.C0, m.C1)
		}
	}
	// Mixed ±0 is numerically constant but not bitwise reconstructible
	// from offset+0*scale; it must fall back rather than flip a zero sign.
	mixed := []float64{0, math.Copysign(0, -1), 0}
	m = decodeOne(t, encode(t, func(e *Encoder) error { return e.Push("p", mixed, c1) }))
	if m.Kind != KindPush {
		t.Fatalf("mixed ±0 framed as %v, want the float fallback", m.Kind)
	}
	if math.Signbit(m.C0[0]) || !math.Signbit(m.C0[1]) {
		t.Fatalf("zero signs corrupted: %v", m.C0)
	}
}

// TestPushQVersionGate: an encoder pinned to a v3 peer must never emit
// the v4 frame, whatever the data.
func TestPushQVersionGate(t *testing.T) {
	c0, c1 := adcBatch(32, 4), adcBatch(32, 5)
	m := decodeOne(t, encode(t, func(e *Encoder) error {
		e.SetVersion(3)
		return e.Push("p", c0, c1)
	}))
	if m.Kind != KindPush {
		t.Fatalf("v3-pinned encoder framed as %v, want push", m.Kind)
	}
	// SetVersion clamps at our own Version: a newer peer cannot make us
	// emit frames we don't speak ourselves.
	e := NewEncoder(io.Discard)
	e.SetVersion(99)
	if e.version != Version {
		t.Fatalf("SetVersion(99) left version %d, want clamp to %d", e.version, Version)
	}
}

// TestPushQZeroAllocSteadyState: the quantize-and-frame path must reuse
// its code scratch — the hot wire path has the same allocation budget
// as the float encoder.
func TestPushQZeroAllocSteadyState(t *testing.T) {
	e := NewEncoder(io.Discard)
	c0, c1 := adcBatch(256, 6), adcBatch(256, 7)
	if err := e.Push("p", c0, c1); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := e.Push("p", c0, c1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 { // same bufio slack tolerance as TestEncoderReusesScratch
		t.Fatalf("quantized Push allocates %.1f objects per batch in steady state", allocs)
	}
}

// TestPushQTruncatedPayloadRejected: a PushQ body whose code count
// overruns the frame must error, mirroring the float bounds checks.
func TestPushQTruncatedPayloadRejected(t *testing.T) {
	raw := encode(t, func(e *Encoder) error {
		return e.Push("p", []float64{1, 2, 3, 4}, []float64{5, 6, 7, 8})
	})
	if m := decodeOne(t, raw); m.Kind != KindPushQ {
		t.Fatalf("setup framed as %v, want push-q", m.Kind)
	}
	for cut := 5; cut < len(raw)-4; cut += 3 {
		trunc := append([]byte(nil), raw[:cut]...)
		if _, err := NewDecoder(bytes.NewReader(trunc)).Next(); err == nil {
			t.Fatalf("decoder accepted a push-q frame truncated at %d", cut)
		}
	}
}
