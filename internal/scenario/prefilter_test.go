package scenario

import (
	"math"
	"reflect"
	"testing"
	"time"
)

// TestPrefilterWitness is the pinned witness for the edge/cloud
// two-stage split, on a seizure-sparse six-hour single-patient stream:
//
//   - equal event-level sensitivity with the prefilter on and off;
//   - bit-identical alarms between the engine's gated replay and a
//     reference run that pushes exactly the gated seconds — alarms are
//     a function of the admitted stream alone, digests and audit
//     samples never perturb it;
//   - uplink bytes reduced ≥ 100x, by exact wire-frame accounting;
//   - the negative control: a mis-tuned gate (declaring one factor,
//     suppressing with a far blunter one) loses the seizure AND trips
//     the shard's audit into EventPrefilterDrift.
func TestPrefilterWitness(t *testing.T) {
	if testing.Short() {
		t.Skip("six-hour witness replay in -short mode")
	}

	on := Spec{
		Name:       "prefilter-witness",
		Seed:       4242,
		Patients:   1,
		Duration:   21600,
		SampleRate: 128,
		Seizures:   Seizures{Count: 3, First: 600, Gap: 9000, Duration: 20},
		Confirm:    true,
		Prefilter:  &PrefilterSpec{Factor: 2.5, AuditEvery: 1024},
	}
	off := on
	off.Name = "prefilter-witness-off"
	off.Prefilter = nil

	type arm struct {
		res *Result
		col *Collector
		w   *Workload
	}
	run := func(s Spec) arm {
		t.Helper()
		w, err := Build(s)
		if err != nil {
			t.Fatal(err)
		}
		c := NewCollector()
		srv, err := NewLocalServer(w, c)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		res, err := w.Run(LocalBackend(srv), c)
		if err != nil {
			t.Fatal(err)
		}
		return arm{res: res, col: c, w: w}
	}

	onArm := run(on)
	offArm := run(off)

	// Event-level sensitivity: every scored seizure detected in both
	// arms — and non-vacuously so.
	if offArm.res.Events != 2 || offArm.res.Detected != 2 {
		t.Fatalf("full-rate baseline detected %d/%d events: %+v", offArm.res.Detected, offArm.res.Events, offArm.res)
	}
	if onArm.res.Events != offArm.res.Events || onArm.res.Detected != offArm.res.Detected {
		t.Errorf("prefilter changed event-level detection:\n  on:  %+v\n  off: %+v", onArm.res, offArm.res)
	}

	t.Logf("uplink: %d bytes full-rate, %d gated (%.1fx); suppressed %d, audit samples %d",
		offArm.res.UplinkBytes, onArm.res.UplinkBytes,
		float64(offArm.res.UplinkBytes)/float64(onArm.res.UplinkBytes),
		onArm.res.SuppressedWindows, onArm.res.AuditSamples)

	// The uplink claim: ≥ 100x fewer bytes on this seizure-sparse
	// stream, with exact wire-frame accounting on both sides.
	if onArm.res.UplinkBytes == 0 || offArm.res.UplinkBytes < 100*onArm.res.UplinkBytes {
		t.Errorf("uplink reduction below 100x: %d bytes full-rate vs %d gated (%.1fx)",
			offArm.res.UplinkBytes, onArm.res.UplinkBytes,
			float64(offArm.res.UplinkBytes)/float64(onArm.res.UplinkBytes))
	}

	// The gated arm's audit contract: overwhelming suppression, at
	// least one full-rate audit sample, and no drift from a well-tuned
	// gate. (Drain already verified suppression and sample counts are
	// exactly the client's.)
	if onArm.res.SuppressedWindows < uint64(0.9*on.Duration) {
		t.Errorf("suppressed only %d of %g windows", onArm.res.SuppressedWindows, on.Duration)
	}
	if onArm.res.AuditSamples == 0 {
		t.Error("no audit samples crossed the wire")
	}
	if onArm.res.DriftEvents != 0 || onArm.col.DriftEvents() != 0 {
		t.Errorf("well-tuned gate fired drift: %+v", onArm.res)
	}
	if offArm.res.SuppressedWindows != 0 || offArm.res.AuditSamples != 0 {
		t.Errorf("prefilter-off arm reported suppression: %+v", offArm.res)
	}

	// Bit-identity: a reference run pushing exactly the gated seconds
	// (no digests, no audit samples, same confirm position) must raise
	// alarms at identical admitted-stream times.
	ps := onArm.w.Streams[0]
	fs := int(onArm.w.SampleRate)
	plan, err := buildPrefilterPlan(ps, fs, onArm.w.Spec.Prefilter)
	if err != nil {
		t.Fatal(err)
	}
	cRef := NewCollector()
	srvRef, err := NewLocalServer(onArm.w, cRef)
	if err != nil {
		t.Fatal(err)
	}
	defer srvRef.Close()
	h, err := srvRef.Open(ps.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	confirmAt := int(math.Ceil(ps.Truth[0].End)) + 10
	shipped := 0
	for sec := range plan.ship {
		if plan.ship[sec] {
			lo := sec * fs
			if err := pushRetry(h, ps.C0[lo:lo+fs], ps.C1[lo:lo+fs]); err != nil {
				t.Fatalf("reference push at %d: %v", sec, err)
			}
			shipped++
		}
		if sec == confirmAt {
			if err := confirmRetry(h); err != nil {
				t.Fatalf("reference confirm: %v", err)
			}
			if err := cRef.WaitVersion(ps.ID, 1, 90*time.Second); err != nil {
				t.Fatal(err)
			}
		}
	}
	deadline := time.Now().Add(120 * time.Second)
	for {
		st := srvRef.Snapshot()
		if st.Windows >= uint64(shipped-3) && cRef.TotalAlarms() >= st.Alarms {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("reference replay did not drain: %d/%d windows", st.Windows, shipped-3)
		}
		time.Sleep(10 * time.Millisecond)
	}
	want, got := onArm.col.AlarmTimes(ps.ID), cRef.AlarmTimes(ps.ID)
	if len(want) == 0 {
		t.Fatal("witness vacuous: gated replay raised no alarms")
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("admitted-stream alarms differ:\n  engine:    %v\n  reference: %v", want, got)
	}

	// Negative control: the device declares factor 2.5 but actually
	// gates at 9 — the seizure is suppressed, detection collapses, and
	// the shard's digest audit crosses the drift threshold.
	neg := Spec{
		Name:       "prefilter-mistuned",
		Seed:       4242,
		Patients:   1,
		Duration:   900,
		SampleRate: 128,
		Seizures:   Seizures{Count: 1, First: 120, Duration: 20},
		Prefilter:  &PrefilterSpec{Factor: 2.5, AuditEvery: 8, DriftThreshold: 2, MistuneFactor: 9},
	}
	negRes, err := RunLocal(neg)
	if err != nil {
		t.Fatal(err)
	}
	if negRes.DriftEvents == 0 {
		t.Errorf("mis-tuned gate raised no EventPrefilterDrift: %+v", negRes)
	}
	if negRes.AuditDisagreements < 2 {
		t.Errorf("mis-tuned gate logged %d audit disagreements, want ≥ 2", negRes.AuditDisagreements)
	}
	if negRes.Detected != 0 {
		t.Errorf("mis-tuned gate still detected %d events — negative control broken", negRes.Detected)
	}
}
