package scenario

import "selflearn/internal/signal"

// Matrix returns the pinned adversarial scenario set documented in
// EXPERIMENTS.md: the named, seeded specs cmd/loadgen resolves by name
// and TestScenarioMatrix replays for determinism. The common frame —
// two patients, 420 s at 128 Hz, three 20 s seizures at 60/170/280 s,
// confirm-and-retrain after the first, block admission — keeps runs
// exactly countable; each scenario perturbs exactly one axis so a
// regression points at the subsystem that broke.
//
// The quality prefilter runs with default thresholds everywhere except
// clean-replay-nofilter, the control arm proving the prefilter is a
// no-op on clean signal.
func Matrix() []Spec {
	base := func(name string, seed int64) Spec {
		q := signal.DefaultQuality()
		return Spec{
			Name:       name,
			Seed:       seed,
			Patients:   2,
			Duration:   420,
			SampleRate: 128,
			Seizures:   Seizures{Count: 3, First: 60, Gap: 110, Duration: 20},
			Quality:    &q,
			Confirm:    true,
		}
	}

	clean := base("clean-replay", 401)

	noFilter := base("clean-replay-nofilter", 401)
	noFilter.Name = "clean-replay-nofilter"
	noFilter.Quality = nil

	benign := base("benign-artifacts", 402)
	benign.Artifacts.Blinks = true
	benign.Artifacts.Chewing = true

	burst := base("artifact-burst", 403)
	burst.Artifacts = Artifacts{Bursts: 3, BurstFirst: 95, BurstGap: 110, BurstAmp: 4000, BurstDur: 10}

	dropout := base("electrode-dropout", 404)
	dropout.Dropouts = Dropouts{Count: 3, First: 95, Gap: 110, Duration: 10, Channel: 0}

	// The CI smoke scenario: dropouts and saturating bursts interleaved
	// between the seizures, so a correct run shows nonzero admitted
	// windows AND nonzero quality rejections.
	artDrop := base("artifact-dropout", 405)
	artDrop.Dropouts = Dropouts{Count: 3, First: 95, Gap: 110, Duration: 10, Channel: 0}
	artDrop.Artifacts = Artifacts{Bursts: 2, BurstFirst: 130, BurstGap: 110, BurstAmp: 4000, BurstDur: 8}

	cluster := base("seizure-cluster", 406)
	cluster.Seizures = Seizures{Count: 5, First: 80, Gap: 45, Duration: 15}

	churn := base("patient-churn", 407)
	churn.Churn.Reopens = 5

	chb := base("chbmit-replay", 408)
	chb.Source = Source{Kind: "chbmit"}
	chb.Duration = 360
	chb.Seizures = Seizures{Count: 2}

	wave := base("diurnal-wave", 409)
	wave.Patients = 4
	wave.Wave.Period = 120

	// The uplink pair: the same seizure-sparse single-patient stream
	// replayed with and without the stage-1 prefilter, same seed so the
	// signal is identical. CI's prefilter-smoke job runs both against a
	// live shardd and demands identical alarms at a ≥10x uplink
	// reduction; the pinned witness test makes the stronger ≥100x case
	// in-process on a longer stream.
	pfOff := base("prefilter-off", 410)
	pfOff.Patients = 1
	pfOff.Duration = 1800
	pfOff.Seizures = Seizures{Count: 2, First: 120, Gap: 600, Duration: 20}

	pfOn := pfOff
	pfOn.Name = "prefilter-uplink"
	pfOn.Prefilter = &PrefilterSpec{Factor: 2.5, HistoryWindows: 32, AuditEvery: 128}

	return []Spec{clean, noFilter, benign, burst, dropout, artDrop, cluster, churn, chb, wave, pfOff, pfOn}
}

// Lookup resolves a matrix scenario by name.
func Lookup(name string) (Spec, bool) {
	for _, s := range Matrix() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}
