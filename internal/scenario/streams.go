package scenario

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"os"
	"sort"
	"strings"

	"selflearn/internal/chbmit"
	"selflearn/internal/edf"
	"selflearn/internal/signal"
	"selflearn/internal/synth"
)

// PatientStream is one patient's fully rendered input: the two raw
// channels the engine will replay in one-second batches, plus the
// ground-truth seizure intervals in stream seconds.
type PatientStream struct {
	ID     string
	C0, C1 []float64
	Truth  []signal.Interval
}

// Workload is a built scenario: the defaulted spec and every patient's
// rendered stream. Building is separate from running so cmd/loadgen can
// inspect the effective sample rate (it must match a remote fleet's
// -rate) before opening any connection.
type Workload struct {
	Spec Spec
	// SampleRate is the effective rate in Hz — the spec's for synthetic
	// sources, the files' for EDF replay.
	SampleRate float64
	// Source names the signal origin actually used; "synth-fallback"
	// means the EDF directory held no usable recordings.
	Source  string
	Streams []PatientStream
	// Speed, when positive, paces replay in real time at Speed× wall
	// clock (1 = one stream second per real second), with Spec.Wave
	// modulating the rate. Zero — the default, and what the pinned
	// matrix test uses — replays at full speed. Set by cmd/loadgen's
	// -speed flag; pacing never changes what the backend computes.
	Speed float64
}

// Build defaults and validates the spec and renders every patient
// stream. All randomness derives from Spec.Seed, so the same spec
// builds byte-identical workloads.
func Build(spec Spec) (*Workload, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	w := &Workload{Spec: spec, SampleRate: spec.SampleRate, Source: spec.Source.Kind}
	var err error
	switch spec.Source.Kind {
	case "synth":
		w.Streams, err = buildSynth(spec)
	case "chbmit":
		w.SampleRate = signal.DefaultSampleRate
		w.Streams, err = buildCHBMIT(spec)
	case "edf":
		w.Streams, w.SampleRate, err = buildEDF(spec)
		if err == nil && w.Streams == nil {
			// No .edf files found: degrade to the synthetic source so a
			// scenario stays runnable on a machine without the corpus.
			w.Source = "synth-fallback"
			w.SampleRate = spec.SampleRate
			w.Streams, err = buildSynth(spec)
		}
	}
	if err != nil {
		return nil, err
	}
	return w, nil
}

// patientSeed derives a per-patient seed from the scenario seed; FNV-1a
// over the ID keeps it independent of patient ordering.
func patientSeed(seed int64, id string) int64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return seed ^ int64(h.Sum64())
}

// buildSynth renders one synthetic recording per patient and overlays
// the spec's artifacts and dropouts.
func buildSynth(spec Spec) ([]PatientStream, error) {
	fs := spec.SampleRate
	out := make([]PatientStream, spec.Patients)
	for i := range out {
		id := fmt.Sprintf("p%02d", i+1)
		cfg := synth.RecordConfig{
			PatientID:  id,
			RecordID:   spec.Name,
			Seed:       patientSeed(spec.Seed, id),
			Duration:   spec.Duration,
			SampleRate: fs,
			Background: synth.DefaultBackground(),
		}
		for k := 0; k < spec.Seizures.Count; k++ {
			cfg.Seizures = append(cfg.Seizures, synth.SeizureEvent{
				Start:    spec.Seizures.First + float64(k)*spec.Seizures.Gap,
				Duration: spec.Seizures.Duration,
				Config:   synth.DefaultSeizure(),
			})
		}
		rec, err := synth.Generate(cfg)
		if err != nil {
			return nil, err
		}
		if err := contaminate(spec, rec, cfg.Seed); err != nil {
			return nil, err
		}
		out[i] = PatientStream{ID: id, C0: rec.Data[0], C1: rec.Data[1], Truth: rec.Seizures}
	}
	return out, nil
}

// contaminate overlays the spec's artifact and dropout schedule on a
// rendered recording. Artifact randomness uses its own RNG derived from
// the patient seed so adding contamination never perturbs the
// underlying signal.
func contaminate(spec Spec, rec *signal.Recording, seed int64) error {
	fs := rec.SampleRate
	n := len(rec.Data[0])
	rng := rand.New(rand.NewSource(seed ^ 0x5ce4a12f))
	if spec.Artifacts.Blinks {
		// Blinks ride the frontal channel.
		if err := synth.AddBlinks(rng, rec.Data[0], 0, n, fs, synth.DefaultBlink()); err != nil {
			return err
		}
	}
	if spec.Artifacts.Chewing {
		// Chewing EMG rides both temporal electrodes.
		for c := 0; c < 2; c++ {
			if err := synth.AddChewing(rng, rec.Data[c], 0, n, fs, synth.DefaultChew()); err != nil {
				return err
			}
		}
	}
	for k := 0; k < spec.Artifacts.Bursts; k++ {
		start := int((spec.Artifacts.BurstFirst + float64(k)*spec.Artifacts.BurstGap) * fs)
		cfg := synth.ArtifactConfig{Amp: spec.Artifacts.BurstAmp, Duration: spec.Artifacts.BurstDur, HighFreq: false}
		for c := 0; c < 2; c++ {
			if err := synth.AddArtifact(rng, rec.Data[c], start, fs, cfg); err != nil {
				return err
			}
		}
	}
	for k := 0; k < spec.Dropouts.Count; k++ {
		start := int((spec.Dropouts.First + float64(k)*spec.Dropouts.Gap) * fs)
		cfg := synth.DropoutConfig{Duration: spec.Dropouts.Duration}
		chans := []int{spec.Dropouts.Channel}
		if spec.Dropouts.Channel == -1 {
			chans = []int{0, 1}
		}
		for _, c := range chans {
			if err := synth.AddDropout(rec.Data[c], start, fs, cfg); err != nil {
				return err
			}
		}
	}
	return nil
}

// buildCHBMIT replays the nine-patient catalog: each scenario patient
// takes a catalog subject round-robin and streams Seizures.Count crops
// of that subject's seizure records back to back, so a bounded-duration
// run still covers multiple real-morphology seizures per patient.
func buildCHBMIT(spec Spec) ([]PatientStream, error) {
	catalog := chbmit.Patients()
	count := spec.Seizures.Count
	if count < 1 {
		count = 2
	}
	cropLen := math.Floor(spec.Duration / float64(count))
	if cropLen < 8 {
		return nil, fmt.Errorf("scenario: %g s over %d crops leaves %g s crops", spec.Duration, count, cropLen)
	}
	out := make([]PatientStream, spec.Patients)
	for i := range out {
		sub := catalog[i%len(catalog)]
		id := sub.ID
		if i >= len(catalog) {
			id = fmt.Sprintf("%s-%d", sub.ID, i/len(catalog))
		}
		ps := PatientStream{ID: id}
		for k := 0; k < count; k++ {
			szIdx := k%len(sub.Seizures) + 1
			rec, err := sub.SeizureRecord(szIdx, spec.Seed+int64(i*count+k))
			if err != nil {
				return nil, err
			}
			fs := rec.SampleRate
			truth := rec.Seizures[0]
			// Crop [onset−60, onset−60+cropLen], clamped into the record,
			// on whole-second boundaries.
			lo := math.Max(0, math.Floor(truth.Start)-60)
			if lo+cropLen > chbmit.RecordDuration {
				lo = chbmit.RecordDuration - cropLen
			}
			a, b := int(lo*fs), int((lo+cropLen)*fs)
			offset := float64(len(ps.C0)) / fs
			ps.C0 = append(ps.C0, rec.Data[0][a:b]...)
			ps.C1 = append(ps.C1, rec.Data[1][a:b]...)
			ps.Truth = append(ps.Truth, signal.Interval{
				Start: truth.Start - lo + offset,
				End:   math.Min(truth.End, lo+cropLen) - lo + offset,
			})
		}
		out[i] = ps
	}
	return out, nil
}

// buildEDF replays real recordings from a directory of .edf files (with
// internal/edf's sidecar annotations supplying ground truth). Returns
// (nil, 0, nil) when the directory holds no .edf files so Build can
// fall back to the synthetic source.
func buildEDF(spec Spec) ([]PatientStream, float64, error) {
	entries, err := os.ReadDir(spec.Source.Dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".edf") {
			names = append(names, strings.TrimSuffix(e.Name(), ".edf"))
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, 0, nil
	}
	out := make([]PatientStream, spec.Patients)
	fs := 0.0
	for i := range out {
		name := names[i%len(names)]
		rec, err := edf.LoadRecording(spec.Source.Dir, name)
		if err != nil {
			return nil, 0, fmt.Errorf("scenario: %s: %w", name, err)
		}
		if len(rec.Data) < 2 {
			return nil, 0, fmt.Errorf("scenario: %s has %d channels, need 2", name, len(rec.Data))
		}
		if fs == 0 {
			fs = rec.SampleRate
		} else if rec.SampleRate != fs {
			return nil, 0, fmt.Errorf("scenario: %s samples at %g Hz, others at %g Hz", name, rec.SampleRate, fs)
		}
		// Truncate to the spec duration on a whole-second boundary.
		n := len(rec.Data[0])
		if max := int(spec.Duration * fs); n > max {
			n = max
		}
		n -= n % int(fs)
		id := rec.PatientID
		if id == "" {
			id = name
		}
		if i >= len(names) {
			id = fmt.Sprintf("%s-%d", id, i/len(names))
		}
		ps := PatientStream{ID: id, C0: rec.Data[0][:n], C1: rec.Data[1][:n]}
		end := float64(n) / fs
		for _, iv := range rec.Seizures {
			if iv.Start < end {
				ps.Truth = append(ps.Truth, signal.Interval{Start: iv.Start, End: math.Min(iv.End, end)})
			}
		}
		out[i] = ps
	}
	return out, fs, nil
}
