// Package scenario is the adversarial workload harness for the serving
// layer: seeded, declarative scenario specs that compose signal sources
// (synthetic, the CHB-MIT-mirroring catalog, or EDF files on disk) with
// the failure modes a wearable deployment actually sees — artifact
// bursts, electrode dropout, patient churn, seizure clusters — and an
// engine that replays them through a serving backend and scores the
// resulting alarms against ground truth with internal/eval.
//
// The same engine drives an in-process serve.Server (RunLocal, used by
// the pinned scenario-matrix test) and a shardd fleet over
// internal/cluster (cmd/loadgen -cluster). Every random choice derives
// from Spec.Seed, so a scenario run twice produces identical eval rows.
package scenario

import (
	"fmt"
	"math"

	"selflearn/internal/fault"
	"selflearn/internal/rt"
	"selflearn/internal/serve"
	"selflearn/internal/signal"
)

// Spec declares one scenario. The zero value of most fields selects a
// sensible default (see withDefaults); Validate rejects combinations
// the engine cannot replay deterministically.
type Spec struct {
	// Name labels the scenario in results and logs.
	Name string `json:"name"`
	// Seed drives every random choice in the scenario: signal
	// generation, artifact timing, and retrain seeds derive from it.
	Seed int64 `json:"seed"`
	// Patients is the number of concurrent patient streams. 0 = 2.
	Patients int `json:"patients,omitempty"`
	// Duration is the stream length per patient in whole seconds.
	// 0 = 420.
	Duration float64 `json:"duration_s,omitempty"`
	// SampleRate is the sampling rate in Hz; it must be a whole number
	// of samples per second and compatible with the level-7 DWT
	// (window·rate divisible by 128). 0 = 128, which keeps feature
	// extraction cheap.
	SampleRate float64 `json:"sample_rate,omitempty"`
	// Source selects where the signal comes from.
	Source Source `json:"source,omitempty"`
	// Seizures places the ground-truth discharges (synth source only;
	// catalog and EDF sources carry their own annotations).
	Seizures Seizures `json:"seizures,omitempty"`
	// Artifacts injects benign and adversarial contamination.
	Artifacts Artifacts `json:"artifacts,omitempty"`
	// Dropouts injects electrode disconnects.
	Dropouts Dropouts `json:"dropouts,omitempty"`
	// Churn exercises rapid handle close/reopen cycles.
	Churn Churn `json:"churn,omitempty"`
	// Wave modulates real-time pacing (cmd/loadgen -speed only; at full
	// replay speed it has no effect on results).
	Wave Wave `json:"wave,omitempty"`
	// Quality, when non-nil, installs the quality prefilter on the
	// serving path with these thresholds; the engine mirrors the same
	// assessment client-side to map ground truth into admitted stream
	// time. Nil = no prefilter.
	Quality *signal.QualityConfig `json:"quality,omitempty"`
	// Prefilter, when non-nil, replays the edge/cloud two-stage split:
	// the engine runs the declared amplitude gate "on device", ships
	// gated seconds at full rate, folds suppressed ones into compact
	// digests with periodic audit samples, and accounts the uplink in
	// wire-protocol bytes. Nil = every second ships at full rate.
	Prefilter *PrefilterSpec `json:"prefilter,omitempty"`
	// Admission is the stream admission policy: "block" (default —
	// lossless, required for exact-count determinism), "drop" or "shed".
	Admission string `json:"admission,omitempty"`
	// Confirm, when true, has each patient confirm their first seizure
	// (the paper's button press) and barrier on the resulting retrain
	// before streaming on; detection is then scored against the
	// remaining seizures only.
	Confirm bool `json:"confirm,omitempty"`
	// Tolerance extends each ground-truth event for alarm matching, in
	// seconds. 0 = 30.
	Tolerance float64 `json:"tolerance_s,omitempty"`
	// Refractory is the alarm hold-off in seconds. 0 = 30 (the rt
	// default of two minutes would mask clustered seizures).
	Refractory float64 `json:"refractory_s,omitempty"`
	// Faults, when non-nil, is the scenario's chaos plan: a seeded
	// fault-injection schedule (internal/fault) that cmd/loadgen
	// applies to its cluster connections, composing infrastructure
	// failure with the adversarial signal above. The plan carries its
	// own seed, so the fault schedule replays as deterministically as
	// the workload. Local (in-process) runs have no network to fault
	// and ignore it.
	Faults *fault.Plan `json:"faults,omitempty"`
}

// Source selects the signal origin.
type Source struct {
	// Kind is "synth" (default), "chbmit" (the nine-patient catalog
	// mirroring the paper's corpus) or "edf" (real recordings from Dir,
	// falling back to synth when Dir holds no .edf files).
	Kind string `json:"kind,omitempty"`
	// Dir is the directory of .edf files for Kind "edf".
	Dir string `json:"dir,omitempty"`
}

// Seizures places Count discharges of Duration seconds at onsets
// First, First+Gap, First+2·Gap, … A small Gap relative to Duration
// expresses a seizure cluster.
type Seizures struct {
	Count    int     `json:"count,omitempty"`
	First    float64 `json:"first_s,omitempty"`
	Gap      float64 `json:"gap_s,omitempty"` // onset-to-onset
	Duration float64 `json:"duration_s,omitempty"`
}

// Artifacts injects contamination. Blinks and Chewing are benign —
// physiological artifacts a quality gate must NOT reject — while Bursts
// are high-amplitude electrode/EMG events that should saturate it.
type Artifacts struct {
	Blinks  bool `json:"blinks,omitempty"`
	Chewing bool `json:"chewing,omitempty"`
	// Bursts places Count noise bursts of Dur seconds and Amp µV at
	// First, First+Gap, … on both channels.
	Bursts     int     `json:"bursts,omitempty"`
	BurstFirst float64 `json:"burst_first_s,omitempty"`
	BurstGap   float64 `json:"burst_gap_s,omitempty"`
	BurstAmp   float64 `json:"burst_amp,omitempty"`
	BurstDur   float64 `json:"burst_dur_s,omitempty"`
}

// Dropouts places Count electrode disconnects of Duration seconds at
// First, First+Gap, … Channel selects which electrode pair flatlines:
// 0 or 1, or -1 for both.
type Dropouts struct {
	Count    int     `json:"count,omitempty"`
	First    float64 `json:"first_s,omitempty"`
	Gap      float64 `json:"gap_s,omitempty"`
	Duration float64 `json:"duration_s,omitempty"`
	Channel  int     `json:"channel,omitempty"`
}

// Churn exercises session-handle churn: each patient's stream is closed
// and reopened Reopens times at even intervals during the run. The
// server-side session must survive (models stay warm, the feature
// streamer keeps its state).
type Churn struct {
	Reopens int `json:"reopens,omitempty"`
}

// PrefilterSpec declares the client-side stage-1 amplitude gate of the
// edge/cloud split (serve.PrefilterClient). The engine precomputes the
// gate's per-second verdicts, so the replay — and every counter derived
// from it — stays exactly deterministic.
type PrefilterSpec struct {
	// Factor is the declared gate's trigger multiple over the rolling
	// median amplitude (rt.GateConfig.Factor). Required, > 1.
	Factor float64 `json:"factor"`
	// HistoryWindows sizes the gate's rolling baseline. 0 = 64.
	HistoryWindows int `json:"history_windows,omitempty"`
	// AuditEvery ships every Nth suppressed window at full rate for the
	// shard-side audit. 0 = serve.DefaultAuditEvery. Negative values are
	// rejected: serve's shard-requested-only sampling mode (AuditEvery
	// 0 on the wire) depends on event round-trip timing and cannot be
	// replayed deterministically.
	AuditEvery int `json:"audit_every,omitempty"`
	// DriftThreshold is the shard's audit-disagreement tolerance before
	// it emits EventPrefilterDrift. 0 = serve.DefaultDriftThreshold.
	DriftThreshold int `json:"drift_threshold,omitempty"`
	// MistuneFactor, when > 0, is the factor the device ACTUALLY gates
	// with while still declaring Factor to the shard — the negative
	// control proving the audit catches a drifted stage 1.
	MistuneFactor float64 `json:"mistune_factor,omitempty"`
}

// Config resolves the spec into the declaration the stream announces to
// its shard.
func (p PrefilterSpec) Config() serve.PrefilterConfig {
	hw := p.HistoryWindows
	if hw == 0 {
		hw = 64
	}
	ae := p.AuditEvery
	if ae == 0 {
		ae = serve.DefaultAuditEvery
	}
	dt := p.DriftThreshold
	if dt == 0 {
		dt = serve.DefaultDriftThreshold
	}
	return serve.PrefilterConfig{
		Gate:           rt.GateConfig{Factor: p.Factor, HistoryWindows: hw},
		AuditEvery:     ae,
		DriftThreshold: dt,
	}
}

// ActualGate is the gate the replayed device really runs: the declared
// one, unless MistuneFactor sets up the negative control.
func (p PrefilterSpec) ActualGate() rt.GateConfig {
	g := p.Config().Gate
	if p.MistuneFactor > 0 {
		g.Factor = p.MistuneFactor
	}
	return g
}

// Wave shapes real-time pacing as a diurnal load wave with the given
// period in seconds: patients alternate between full rate and half rate.
// Only cmd/loadgen's -speed mode paces in real time; the scenario
// matrix replays at full speed where the wave is a no-op by design.
type Wave struct {
	Period float64 `json:"period_s,omitempty"`
}

// withDefaults resolves zero fields to the documented defaults.
func (s Spec) withDefaults() Spec {
	if s.Patients == 0 {
		s.Patients = 2
	}
	if s.Duration == 0 {
		s.Duration = 420
	}
	if s.SampleRate == 0 {
		s.SampleRate = 128
	}
	if s.Source.Kind == "" {
		s.Source.Kind = "synth"
	}
	if s.Admission == "" {
		s.Admission = "block"
	}
	if s.Tolerance == 0 {
		s.Tolerance = 30
	}
	if s.Refractory == 0 {
		s.Refractory = 30
	}
	return s
}

// Validate checks the spec after defaulting. The whole-second
// constraints exist because the engine replays in one-second batches
// and maps ground truth through a per-second admitted mask.
func (s Spec) Validate() error {
	if s.Patients < 1 {
		return fmt.Errorf("scenario: %d patients", s.Patients)
	}
	if s.Duration < 8 || s.Duration != math.Trunc(s.Duration) {
		return fmt.Errorf("scenario: duration %g s must be a whole number ≥ 8", s.Duration)
	}
	if s.SampleRate < 1 || s.SampleRate != math.Trunc(s.SampleRate) {
		return fmt.Errorf("scenario: sample rate %g must be a whole number ≥ 1", s.SampleRate)
	}
	switch s.Source.Kind {
	case "synth", "chbmit":
	case "edf":
		if s.Source.Dir == "" {
			return fmt.Errorf("scenario: edf source needs a directory")
		}
	default:
		return fmt.Errorf("scenario: unknown source kind %q", s.Source.Kind)
	}
	switch s.Admission {
	case "block", "drop", "shed":
	default:
		return fmt.Errorf("scenario: unknown admission %q (want block, drop or shed)", s.Admission)
	}
	if s.Seizures.Count > 0 && s.Source.Kind == "synth" {
		last := s.Seizures.First + float64(s.Seizures.Count-1)*s.Seizures.Gap + s.Seizures.Duration
		if s.Seizures.First < 0 || s.Seizures.Duration <= 0 || last > s.Duration {
			return fmt.Errorf("scenario: seizures %+v do not fit in %g s", s.Seizures, s.Duration)
		}
		if s.Seizures.Count > 1 && s.Seizures.Gap < s.Seizures.Duration {
			return fmt.Errorf("scenario: seizure gap %g s shorter than duration %g s", s.Seizures.Gap, s.Seizures.Duration)
		}
	}
	if a := s.Artifacts; a.Bursts > 0 {
		last := a.BurstFirst + float64(a.Bursts-1)*a.BurstGap + a.BurstDur
		if a.BurstFirst < 0 || a.BurstDur <= 0 || a.BurstAmp <= 0 || last > s.Duration {
			return fmt.Errorf("scenario: bursts %+v do not fit in %g s", a, s.Duration)
		}
	}
	if d := s.Dropouts; d.Count > 0 {
		last := d.First + float64(d.Count-1)*d.Gap + d.Duration
		if d.First < 0 || d.Duration <= 0 || last > s.Duration {
			return fmt.Errorf("scenario: dropouts %+v do not fit in %g s", d, s.Duration)
		}
		if d.Channel < -1 || d.Channel > 1 {
			return fmt.Errorf("scenario: dropout channel %d (want 0, 1 or -1)", d.Channel)
		}
	}
	if s.Churn.Reopens < 0 {
		return fmt.Errorf("scenario: negative reopens %d", s.Churn.Reopens)
	}
	if s.Quality != nil {
		if err := s.Quality.Validate(); err != nil {
			return err
		}
	}
	if p := s.Prefilter; p != nil {
		if p.AuditEvery < 0 {
			return fmt.Errorf("scenario: prefilter audit_every %d (shard-requested sampling is not replayable)", p.AuditEvery)
		}
		if err := p.Config().Validate(); err != nil {
			return err
		}
		if err := p.ActualGate().Validate(); err != nil {
			return err
		}
	}
	if s.Tolerance < 0 || s.Refractory < 0 {
		return fmt.Errorf("scenario: negative tolerance or refractory")
	}
	if err := s.Faults.Validate(); err != nil {
		return err
	}
	return nil
}

// Result is one scenario run's eval row — the JSON object cmd/loadgen
// emits per scenario and the value the pinned matrix test compares
// across runs. Every field is deterministic for a given (spec, seed).
type Result struct {
	Name     string `json:"name"`
	Seed     int64  `json:"seed"`
	Patients int    `json:"patients"`
	// Source is the signal origin actually used ("synth", "chbmit",
	// "edf", or "synth-fallback" when an EDF directory held no data).
	Source string `json:"source"`
	// StreamSeconds is the total raw seconds pushed across patients;
	// AdmittedSeconds subtracts the quality-rejected ones.
	StreamSeconds   float64 `json:"stream_seconds"`
	AdmittedSeconds float64 `json:"admitted_seconds"`
	// Windows is the number of feature windows classified (the CI smoke
	// asserts it is nonzero); QualityRejected counts batches the
	// prefilter refused; Shed and Dropped count admission losses.
	Windows         uint64 `json:"windows"`
	QualityRejected uint64 `json:"quality_rejected"`
	Shed            uint64 `json:"batches_shed"`
	Dropped         uint64 `json:"batches_dropped"`
	// Retrains counts completed background retrains; Alarms the alarms
	// raised.
	Retrains uint64 `json:"retrains"`
	Alarms   uint64 `json:"alarms"`
	// Uplink accounting for the edge/cloud split. UplinkBytes prices
	// every frame the run pushed (batches, digests, audit samples,
	// declarations, confirms) in wire-protocol v5 bytes, so local and
	// cluster backends report the same number for the same spec.
	// SuppressedWindows, AuditSamples, AuditDisagreements and
	// DriftEvents are the shard's prefilter-audit counters; all zero
	// when the spec declares no prefilter.
	UplinkBytes        uint64 `json:"uplink_bytes"`
	SuppressedWindows  uint64 `json:"suppressed_windows"`
	AuditSamples       uint64 `json:"audit_samples"`
	AuditDisagreements uint64 `json:"audit_disagreements"`
	DriftEvents        uint64 `json:"drift_events"`
	// Detection metrics over the scored events (excluding each
	// patient's confirmed training seizure when Confirm is set).
	Events             int     `json:"events"`
	Detected           int     `json:"detected"`
	Sensitivity        float64 `json:"sensitivity"`
	FalseAlarms        int     `json:"false_alarms"`
	FalseAlarmsPerHour float64 `json:"false_alarms_per_hour"`
}
