package scenario

import (
	"encoding/json"
	"reflect"
	"testing"

	"selflearn/internal/fault"
	"selflearn/internal/signal"
)

// TestScenarioMatrix replays every pinned scenario twice and demands
// bit-identical eval rows — the determinism contract cmd/loadgen and
// the docs advertise — then cross-checks the rows against each other:
// the prefilter must be a no-op on clean and benign signal, must
// reject garbage on the adversarial arms, and churn must not change
// serving outcomes.
func TestScenarioMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix replay in -short mode")
	}
	rows := map[string]*Result{}
	for _, spec := range Matrix() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			r1, err := RunLocal(spec)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := RunLocal(spec)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(r1, r2) {
				t.Fatalf("same seed, different rows:\n  %+v\n  %+v", r1, r2)
			}
			rows[spec.Name] = r1
		})
	}
	if t.Failed() || len(rows) != len(Matrix()) {
		// Cross-checks need every arm; a -run filter selecting a subset
		// still pins determinism for the arms it ran.
		return
	}

	clean := rows["clean-replay"]
	// 420 s × 2 patients, nothing rejected: (420−3) windows each.
	if clean.QualityRejected != 0 || clean.Windows != 2*(420-3) {
		t.Errorf("clean-replay: rejected %d windows %d, want 0 / %d", clean.QualityRejected, clean.Windows, 2*(420-3))
	}
	if clean.Retrains != 2 {
		t.Errorf("clean-replay retrains = %d, want 2", clean.Retrains)
	}
	if clean.Detected == 0 {
		t.Errorf("clean-replay detected no seizures: %+v", clean)
	}

	// The prefilter must not perturb detection on clean signal: the
	// no-prefilter control arm (same seed) yields the same outcomes.
	ctrl := rows["clean-replay-nofilter"]
	if ctrl.Windows != clean.Windows || ctrl.Alarms != clean.Alarms ||
		ctrl.Detected != clean.Detected || ctrl.FalseAlarms != clean.FalseAlarms ||
		ctrl.Sensitivity != clean.Sensitivity {
		t.Errorf("prefilter changed clean-signal outcomes:\n  with:    %+v\n  without: %+v", clean, ctrl)
	}

	// Benign physiological artifacts must pass the quality gate.
	if r := rows["benign-artifacts"]; r.QualityRejected != 0 {
		t.Errorf("benign-artifacts: %d batches rejected, want 0", r.QualityRejected)
	}

	// Adversarial contamination must be rejected — and the seizures
	// around it still served.
	for _, name := range []string{"artifact-burst", "electrode-dropout", "artifact-dropout"} {
		r := rows[name]
		if r.QualityRejected == 0 {
			t.Errorf("%s: no quality rejections", name)
		}
		if r.Windows == 0 {
			t.Errorf("%s: no windows served", name)
		}
		if r.Windows+r.QualityRejected*1 > uint64(r.StreamSeconds) {
			t.Errorf("%s: windows %d + rejects %d exceed %g stream seconds", name, r.Windows, r.QualityRejected, r.StreamSeconds)
		}
	}
	// Dropout rejections are exactly countable: 3 dropouts × 10 flat
	// seconds × 2 patients.
	if r := rows["electrode-dropout"]; r.QualityRejected != 60 {
		t.Errorf("electrode-dropout rejected %d batches, want 60", r.QualityRejected)
	}

	// Handle churn must not change what the server computes.
	if r := rows["patient-churn"]; r.Windows != 2*(420-3) || r.Retrains != 2 {
		t.Errorf("patient-churn: windows %d retrains %d, want %d / 2", r.Windows, r.Retrains, 2*(420-3))
	}

	// Seizure cluster: 5 seizures, first consumed by training, 4 scored
	// per patient.
	if r := rows["seizure-cluster"]; r.Events != 8 {
		t.Errorf("seizure-cluster scored %d events, want 8", r.Events)
	}

	// Catalog replay: two 180 s crops per patient.
	if r := rows["chbmit-replay"]; r.Source != "chbmit" || r.Windows != 2*(360-3) {
		t.Errorf("chbmit-replay: source %q windows %d, want chbmit / %d", r.Source, r.Windows, 2*(360-3))
	}

	// The uplink pair: the stage-1 prefilter must not change
	// event-level detection on the same signal, while cutting uplink
	// bytes by at least the 10x CI gates on.
	pfOff, pfOn := rows["prefilter-off"], rows["prefilter-uplink"]
	if pfOn.Detected != pfOff.Detected || pfOn.Events != pfOff.Events {
		t.Errorf("prefilter changed detection:\n  on:  %+v\n  off: %+v", pfOn, pfOff)
	}
	if pfOn.UplinkBytes == 0 || pfOff.UplinkBytes < 10*pfOn.UplinkBytes {
		t.Errorf("uplink reduction below 10x: %d vs %d bytes", pfOff.UplinkBytes, pfOn.UplinkBytes)
	}
	if pfOn.SuppressedWindows == 0 || pfOn.AuditSamples == 0 {
		t.Errorf("prefilter-uplink: suppressed %d, audit samples %d, want both nonzero", pfOn.SuppressedWindows, pfOn.AuditSamples)
	}
	if pfOn.DriftEvents != 0 {
		t.Errorf("well-tuned gate fired drift: %+v", pfOn)
	}
	if pfOff.SuppressedWindows != 0 || pfOff.AuditSamples != 0 || pfOff.UplinkBytes == 0 {
		t.Errorf("prefilter-off arm carries prefilter counters: %+v", pfOff)
	}
}

// TestEDFFallback: an EDF source pointed at a directory with no
// recordings degrades to the synthetic generator instead of failing, so
// scenarios stay runnable without the access-gated corpus.
func TestEDFFallback(t *testing.T) {
	spec, ok := Lookup("clean-replay")
	if !ok {
		t.Fatal("clean-replay missing from matrix")
	}
	spec.Name = "edf-fallback"
	spec.Source = Source{Kind: "edf", Dir: t.TempDir()}
	spec.Duration = 60
	spec.Seizures = Seizures{}
	spec.Confirm = false
	w, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if w.Source != "synth-fallback" {
		t.Fatalf("source = %q, want synth-fallback", w.Source)
	}
	if len(w.Streams) != 2 || len(w.Streams[0].C0) != 60*128 {
		t.Fatalf("fallback streams malformed: %d streams", len(w.Streams))
	}
	// A nonexistent directory falls back the same way.
	spec.Source.Dir = "/nonexistent/scenario-edf"
	if w, err = Build(spec); err != nil || w.Source != "synth-fallback" {
		t.Fatalf("missing dir: source %q err %v", w.Source, err)
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Duration: 5},                 // too short
		{Duration: 60.5},              // fractional seconds
		{Admission: "lossy"},          // unknown policy
		{Source: Source{Kind: "edf"}}, // edf without dir
		{Seizures: Seizures{Count: 1, First: 400, Duration: 30}}, // overflows 420 s
		{Dropouts: Dropouts{Count: 1, First: 0, Duration: 10, Channel: 2}},
		{Quality: &signal.QualityConfig{FlatlineStd: -1}},
		{Prefilter: &PrefilterSpec{Factor: 0.5}},                   // factor must exceed 1
		{Prefilter: &PrefilterSpec{Factor: 2, AuditEvery: -1}},     // shard-requested sampling not replayable
		{Prefilter: &PrefilterSpec{Factor: 2, MistuneFactor: 0.5}}, // mistuned gate still needs a valid factor
	}
	for i, s := range bad {
		if err := s.withDefaults().Validate(); err == nil {
			t.Errorf("spec %d validated: %+v", i, s)
		}
	}
	good := Matrix()
	for _, s := range good {
		if err := s.withDefaults().Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

// TestSpecFaultsSection pins the chaos plumbing in the spec format: a
// faults section survives a JSON round trip intact (so a scenario file
// replays the identical fault schedule), and an invalid plan fails
// Validate instead of silently running a clean baseline.
func TestSpecFaultsSection(t *testing.T) {
	spec := Spec{
		Name: "chaos",
		Seed: 9,
		Faults: &fault.Plan{Seed: 42, Rules: []fault.Rule{
			{Peer: "127.0.0.1:7461", Kind: fault.KindPartition, Start: 30, Duration: 10, Repeat: 2, Period: 60, Jitter: 3},
		}},
	}
	if err := spec.withDefaults().Validate(); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var got Spec
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Faults == nil || !reflect.DeepEqual(*got.Faults, *spec.Faults) {
		t.Fatalf("faults section did not round-trip: %+v", got.Faults)
	}
	ws1, err := spec.Faults.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	ws2, err := got.Faults.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if fault.FormatSchedule(ws1) != fault.FormatSchedule(ws2) {
		t.Fatal("fault schedule changed across the spec round trip")
	}

	spec.Faults.Rules[0].Duration = 0
	if err := spec.withDefaults().Validate(); err == nil {
		t.Fatal("spec with an invalid fault rule validated")
	}
}
