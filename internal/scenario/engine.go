package scenario

import (
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sync"
	"time"

	"selflearn/internal/eval"
	"selflearn/internal/rt"
	"selflearn/internal/serve"
	"selflearn/internal/signal"
	"selflearn/internal/wire"
)

// Backend is the serving surface the engine replays against. The local
// implementation wraps an in-process serve.Server; cmd/loadgen supplies
// one wrapping a cluster.Router so the same scenarios drive a shardd
// fleet over TCP.
type Backend interface {
	Open(patient string) (Handle, error)
	Snapshot() serve.Stats
}

// Handle is one patient's stream handle. Push may return
// serve.ErrBackpressure, which the engine retries; any other error
// aborts the scenario. Remote implementations are expected to absorb
// their transient transport errors (failover in flight) internally.
type Handle interface {
	Push(c0, c1 []float64) error
	Confirm() error
	Close()
}

// PrefilterHandle is the uplink surface of the edge/cloud split — the
// optional extension a Handle implements to carry prefilter traffic.
// serve.Stream and cluster.Stream both satisfy it; the engine requires
// it only when the spec declares a prefilter.
type PrefilterHandle interface {
	Handle
	DeclarePrefilter(serve.PrefilterConfig) error
	PushDigest(serve.Digest) error
	PushAudit(c0, c1 []float64) error
}

// Collector accumulates the event-side outcomes of a run: per-patient
// alarm stream times (Event.StreamTime — the deterministic clock
// detections are scored on), per-patient model versions (the retrain
// barrier), and quality rejections. Feed it every event, either as a
// synchronous sink (local) or by draining an Events channel (cluster).
type Collector struct {
	mu       sync.Mutex
	alarms   map[string][]float64
	versions map[string]uint64
	total    uint64
	rejects  uint64
	drifts   uint64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{alarms: map[string][]float64{}, versions: map[string]uint64{}}
}

// Observe records one event. Safe for concurrent use; fast enough for a
// serve.WithEventSink.
func (c *Collector) Observe(ev serve.Event) {
	switch ev.Kind {
	case serve.EventAlarm:
		c.mu.Lock()
		c.alarms[ev.Patient] = append(c.alarms[ev.Patient], ev.StreamTime)
		c.total++
		c.mu.Unlock()
	case serve.EventModelUpdated:
		c.mu.Lock()
		if ev.Version > c.versions[ev.Patient] {
			c.versions[ev.Patient] = ev.Version
		}
		c.mu.Unlock()
	case serve.EventQualityReject:
		c.mu.Lock()
		c.rejects++
		c.mu.Unlock()
	case serve.EventPrefilterDrift:
		c.mu.Lock()
		c.drifts++
		c.mu.Unlock()
	}
}

// DriftEvents returns the number of EventPrefilterDrift events observed
// — the event-side cross-check of Stats.PrefilterDrift.
func (c *Collector) DriftEvents() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.drifts
}

// AlarmTimes returns a copy of the patient's alarm stream times.
func (c *Collector) AlarmTimes(patient string) []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]float64(nil), c.alarms[patient]...)
}

// TotalAlarms returns the number of alarm events observed.
func (c *Collector) TotalAlarms() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// WaitVersion blocks until the patient's model version reaches v — the
// confirm barrier that makes retraining deterministic: no batch pushed
// after it can race the model install.
func (c *Collector) WaitVersion(patient string, v uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout) //selflearn:wallclock-ok operational wait deadline, not replay state
	for {
		c.mu.Lock()
		cur := c.versions[patient]
		c.mu.Unlock()
		if cur >= v {
			return nil
		}
		if time.Now().After(deadline) { //selflearn:wallclock-ok operational wait deadline, not replay state
			return fmt.Errorf("scenario: %s never reached model version %d (at %d)", patient, v, cur)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// admittedMask mirrors the serving path's quality prefilter client-side:
// one bool per stream second, true when the batch would be admitted.
// The mirror must agree with serve.QualityPrefilter exactly — including
// failing open on assessment errors — because ground truth is mapped
// through it into admitted stream time.
func admittedMask(ps PatientStream, fs float64, q *signal.QualityConfig) []bool {
	n := len(ps.C0) / int(fs)
	mask := make([]bool, n)
	for i := range mask {
		mask[i] = true
		if q == nil {
			continue
		}
		lo, hi := i*int(fs), (i+1)*int(fs)
		for _, ch := range [][]float64{ps.C0[lo:hi], ps.C1[lo:hi]} {
			if r, err := signal.AssessChannel(ch, fs, *q); err == nil && !r.OK {
				mask[i] = false
				break
			}
		}
	}
	return mask
}

// admittedTime maps a stream time into admitted (post-prefilter) stream
// time: the clock the feature windows — and therefore the alarms — run
// on. prefix[i] is the number of admitted seconds before second i.
func admittedTime(t float64, mask []bool, prefix []int) float64 {
	sec := int(t)
	if sec >= len(mask) {
		return float64(prefix[len(mask)])
	}
	if mask[sec] {
		return float64(prefix[sec]) + (t - float64(sec))
	}
	return float64(prefix[sec])
}

// prefilterPlan is one patient's precomputed on-device replay: the
// stage-1 gate's verdict for every stream second, the trailing digest,
// and the resulting audit counters. Precomputing keeps Run's accounting
// exact — expected suppression and sample counts are known before the
// first push — and hands the witness test the gate mask that maps
// ground truth into admitted stream time.
type prefilterPlan struct {
	decl       serve.PrefilterConfig
	actions    []serve.PrefilterAction
	final      serve.Digest
	ship       []bool
	suppressed uint64
	samples    uint64
}

// buildPrefilterPlan replays the patient's seconds through a fresh
// stage-1 client — mistuned when the spec sets up the negative control.
func buildPrefilterPlan(ps PatientStream, fs int, p *PrefilterSpec) (*prefilterPlan, error) {
	client, err := serve.NewMistunedPrefilterClient(p.Config(), p.ActualGate())
	if err != nil {
		return nil, err
	}
	seconds := len(ps.C0) / fs
	plan := &prefilterPlan{
		decl:    client.Declared(),
		actions: make([]serve.PrefilterAction, seconds),
		ship:    make([]bool, seconds),
	}
	for sec := 0; sec < seconds; sec++ {
		lo := sec * fs
		a := client.Decide(ps.C0[lo:lo+fs], ps.C1[lo:lo+fs])
		plan.actions[sec] = a
		plan.ship[sec] = a.Ship
	}
	plan.final = client.Final()
	plan.suppressed = client.Suppressed()
	plan.samples = client.Samples()
	return plan, nil
}

// uplinkMeter prices one patient's uplink in wire-protocol bytes by
// encoding the exact frames a v5 connection would carry into a discard
// writer. The meter measures the protocol, not one transport's socket,
// so local and cluster runs report the same number for the same spec —
// and the prefilter-off baseline is priced with the identical ruler.
// io.Discard cannot fail, so encode errors are impossible here.
type uplinkMeter struct {
	enc *wire.Encoder
}

func newUplinkMeter() *uplinkMeter { return &uplinkMeter{enc: wire.NewEncoder(io.Discard)} }

func (m *uplinkMeter) push(patient string, c0, c1 []float64) { _ = m.enc.Push(patient, c0, c1) }

func (m *uplinkMeter) digest(patient string, d serve.Digest) {
	if d.Windows == 0 {
		return
	}
	_ = m.enc.PushDigest(patient, d)
}

func (m *uplinkMeter) audit(patient string, c0, c1 []float64) { _ = m.enc.AuditPush(patient, c0, c1) }

func (m *uplinkMeter) declare(patient string, cfg serve.PrefilterConfig) {
	_ = m.enc.PrefilterDecl(patient, cfg)
}

func (m *uplinkMeter) confirm(patient string) { _ = m.enc.Confirm(patient) }

func (m *uplinkMeter) bytes() uint64 { return m.enc.BytesWritten() }

// Run replays the workload against the backend and scores the alarms
// the collector gathered. The collector must already be receiving the
// backend's events (sink or channel drain) before Run is called.
func (w *Workload) Run(b Backend, c *Collector) (*Result, error) {
	spec := w.Spec
	fs := int(w.SampleRate)

	var plans []*prefilterPlan
	if spec.Prefilter != nil {
		plans = make([]*prefilterPlan, len(w.Streams))
		for i, ps := range w.Streams {
			p, err := buildPrefilterPlan(ps, fs, spec.Prefilter)
			if err != nil {
				return nil, err
			}
			plans[i] = p
		}
	}

	masks := make([][]bool, len(w.Streams))
	prefixes := make([][]int, len(w.Streams))
	var expWindows, expRejects, expSuppressed, expSamples uint64
	var streamSeconds, admittedSeconds int
	for i, ps := range w.Streams {
		masks[i] = admittedMask(ps, w.SampleRate, spec.Quality)
		if plans != nil {
			// Stage 1 runs before the shard's quality gate: a suppressed
			// second never reaches it, so it is neither admitted nor a
			// quality rejection.
			for s := range masks[i] {
				masks[i][s] = masks[i][s] && plans[i].ship[s]
			}
			expSuppressed += plans[i].suppressed
			expSamples += plans[i].samples
		}
		prefix := make([]int, len(masks[i])+1)
		admitted := 0
		for s, ok := range masks[i] {
			prefix[s] = admitted
			if ok {
				admitted++
			} else if plans == nil || plans[i].ship[s] {
				expRejects++
			}
		}
		prefix[len(masks[i])] = admitted
		prefixes[i] = prefix
		streamSeconds += len(masks[i])
		admittedSeconds += admitted
		// 4 s windows on a 1 s hop: the first window completes on the
		// fourth admitted second.
		if admitted > 3 {
			expWindows += uint64(admitted - 3)
		}
	}

	// A remote fleet's counters are cumulative across loadgen runs, so
	// account everything against the delta from here. On a fresh local
	// server the baseline is zero and this is the identity.
	base := b.Snapshot()

	var wg sync.WaitGroup
	errs := make([]error, len(w.Streams))
	meters := make([]*uplinkMeter, len(w.Streams))
	for i := range w.Streams {
		meters[i] = newUplinkMeter()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var plan *prefilterPlan
			if plans != nil {
				plan = plans[i]
			}
			errs[i] = w.runPatient(b, c, w.Streams[i], fs, plan, meters[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var expRetrains uint64
	if spec.Confirm {
		for _, ps := range w.Streams {
			if len(ps.Truth) > 0 {
				expRetrains++
			}
		}
	}
	st, err := awaitDrain(b, base, c, spec.Admission == "block", expWindows, expRejects, expRetrains, expSuppressed, expSamples)
	if err != nil {
		return nil, err
	}

	var uplink uint64
	for _, m := range meters {
		uplink += m.bytes()
	}
	res := &Result{
		Name:            spec.Name,
		Seed:            spec.Seed,
		Patients:        spec.Patients,
		Source:          w.Source,
		StreamSeconds:   float64(streamSeconds),
		AdmittedSeconds: float64(admittedSeconds),
		Windows:         st.Windows,
		QualityRejected: st.QualityRejected,
		Shed:            st.BatchesShed,
		Dropped:         st.BatchesDropped,
		Retrains:        st.Retrains,
		Alarms:          st.Alarms,

		UplinkBytes:        uplink,
		SuppressedWindows:  st.WindowsSuppressed,
		AuditSamples:       st.AuditSamples,
		AuditDisagreements: st.AuditDisagreements,
		DriftEvents:        st.PrefilterDrift,
	}
	var total eval.DetectionMetrics
	for i, ps := range w.Streams {
		truth := ps.Truth
		if spec.Confirm && len(truth) > 0 {
			// The first seizure trained the detector; scoring it would
			// credit the model with the event it learned from.
			truth = truth[1:]
		}
		mapped := make([]signal.Interval, len(truth))
		for k, iv := range truth {
			mapped[k] = signal.Interval{
				Start: admittedTime(iv.Start, masks[i], prefixes[i]),
				End:   admittedTime(iv.End, masks[i], prefixes[i]),
			}
		}
		dm := eval.ScoreDetections(c.AlarmTimes(ps.ID), mapped, spec.Tolerance, float64(prefixes[i][len(masks[i])]))
		total = eval.Merge(total, dm)
	}
	res.Events = total.Events
	res.Detected = total.Detected
	res.Sensitivity = total.Sensitivity
	res.FalseAlarms = total.FalseAlarms
	res.FalseAlarmsPerHour = total.FalseAlarmsPerHour
	return res, nil
}

// runPatient replays one patient's stream in one-second batches:
// churn-segmented handle lifecycle, backpressure retries, the confirm
// barrier after the first seizure, and — when the spec declares a
// prefilter — the precomputed on-device gate verdicts. Every frame that
// crosses the backend is priced into the meter.
func (w *Workload) runPatient(b Backend, c *Collector, ps PatientStream, fs int, plan *prefilterPlan, meter *uplinkMeter) error {
	spec := w.Spec
	seconds := len(ps.C0) / fs
	h, err := b.Open(ps.ID)
	if err != nil {
		return err
	}
	defer func() { h.Close() }()

	var pf PrefilterHandle
	if plan != nil {
		var ok bool
		if pf, ok = h.(PrefilterHandle); !ok {
			return fmt.Errorf("scenario: backend handle %T cannot carry prefilter traffic", h)
		}
		// Declared exactly once: a re-declaration after churn would reset
		// the shard's audit state (mirror baseline, disagreement count)
		// mid-run, while the server-side session survives reopens.
		if err := declareRetry(pf, plan.decl); err != nil {
			return fmt.Errorf("scenario: %s declare: %w", ps.ID, err)
		}
		meter.declare(ps.ID, plan.decl)
	}

	confirmAt := -1
	if spec.Confirm && len(ps.Truth) > 0 {
		confirmAt = int(math.Ceil(ps.Truth[0].End)) + 10
		if confirmAt >= seconds {
			confirmAt = seconds - 1
		}
	}
	segment := seconds
	if spec.Churn.Reopens > 0 {
		segment = seconds / (spec.Churn.Reopens + 1)
		if segment < 1 {
			segment = 1
		}
	}
	for sec := 0; sec < seconds; sec++ {
		if sec > 0 && sec%segment == 0 && spec.Churn.Reopens > 0 {
			// Handle churn: the gateway reconnects; the server-side
			// session (streamer state, model, history) must survive.
			h.Close()
			if h, err = b.Open(ps.ID); err != nil {
				return err
			}
			if plan != nil {
				var ok bool
				if pf, ok = h.(PrefilterHandle); !ok {
					return fmt.Errorf("scenario: backend handle %T cannot carry prefilter traffic", h)
				}
			}
		}
		lo := sec * fs
		c0b, c1b := ps.C0[lo:lo+fs], ps.C1[lo:lo+fs]
		if plan == nil {
			if err := pushRetry(h, c0b, c1b); err != nil {
				return fmt.Errorf("scenario: %s second %d: %w", ps.ID, sec, err)
			}
			meter.push(ps.ID, c0b, c1b)
		} else if err := pushGated(pf, ps.ID, sec, c0b, c1b, plan.actions[sec], meter); err != nil {
			return err
		}
		if sec == confirmAt {
			if err := confirmRetry(h); err != nil {
				return fmt.Errorf("scenario: %s confirm: %w", ps.ID, err)
			}
			meter.confirm(ps.ID)
			if err := c.WaitVersion(ps.ID, 1, 90*time.Second); err != nil {
				return err
			}
		}
		if w.Speed > 0 {
			interval := float64(time.Second) / w.Speed
			if p := spec.Wave.Period; p >= 1 {
				// Diurnal trough: half rate through the second half of
				// each wave period, phase-shifted per patient so the
				// backend sees a rolling wave, not synchronized bursts.
				if math.Mod(float64(sec)+wavePhase(ps.ID, p), p) >= p/2 {
					interval *= 2
				}
			}
			time.Sleep(time.Duration(interval))
		}
	}
	if plan != nil && plan.final.Windows > 0 {
		if err := digestRetry(pf, plan.final); err != nil {
			return fmt.Errorf("scenario: %s final digest: %w", ps.ID, err)
		}
		meter.digest(ps.ID, plan.final)
	}
	return nil
}

// pushGated replays one second through the on-device gate's verdict:
// the completed digest flushes first (the shard's mirror consumes
// amplitudes in stream order), then the batch crosses as a full push,
// an audit sample, or not at all.
func pushGated(pf PrefilterHandle, id string, sec int, c0, c1 []float64, a serve.PrefilterAction, meter *uplinkMeter) error {
	if a.Flush.Windows > 0 {
		if err := digestRetry(pf, a.Flush); err != nil {
			return fmt.Errorf("scenario: %s digest at %d: %w", id, sec, err)
		}
		meter.digest(id, a.Flush)
	}
	switch {
	case a.Ship:
		if err := pushRetry(pf, c0, c1); err != nil {
			return fmt.Errorf("scenario: %s second %d: %w", id, sec, err)
		}
		meter.push(id, c0, c1)
	case a.Audit:
		if err := auditRetry(pf, c0, c1); err != nil {
			return fmt.Errorf("scenario: %s audit at %d: %w", id, sec, err)
		}
		meter.audit(id, c0, c1)
	}
	return nil
}

// wavePhase offsets a patient's position in the load wave, derived
// from the ID so it is stable across runs.
func wavePhase(id string, period float64) float64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return float64(h.Sum64() % uint64(period))
}

func pushRetry(h Handle, c0, c1 []float64) error {
	for {
		err := h.Push(c0, c1)
		if err != serve.ErrBackpressure {
			return err
		}
		time.Sleep(time.Millisecond)
	}
}

func confirmRetry(h Handle) error {
	for {
		err := h.Confirm()
		if err != serve.ErrBackpressure {
			return err
		}
		time.Sleep(time.Millisecond)
	}
}

func declareRetry(h PrefilterHandle, cfg serve.PrefilterConfig) error {
	for {
		err := h.DeclarePrefilter(cfg)
		if err != serve.ErrBackpressure {
			return err
		}
		time.Sleep(time.Millisecond)
	}
}

func digestRetry(h PrefilterHandle, d serve.Digest) error {
	for {
		err := h.PushDigest(d)
		if err != serve.ErrBackpressure {
			return err
		}
		time.Sleep(time.Millisecond)
	}
}

func auditRetry(h PrefilterHandle, c0, c1 []float64) error {
	for {
		err := h.PushAudit(c0, c1)
		if err != serve.ErrBackpressure {
			return err
		}
		time.Sleep(time.Millisecond)
	}
}

// awaitDrain waits until the backend has processed everything the
// scenario pushed and the collector has seen every alarm event. With
// lossless (block) admission the expected counters are exact and are
// verified; with drop/shed admission the run waits for the counters to
// go quiescent instead.
func awaitDrain(b Backend, base serve.Stats, c *Collector, exact bool, expWindows, expRejects, expRetrains, expSuppressed, expSamples uint64) (serve.Stats, error) {
	deadline := time.Now().Add(120 * time.Second) //selflearn:wallclock-ok operational drain timeout, not replay state
	var last serve.Stats
	stable := 0
	for {
		st := statsDelta(b.Snapshot(), base)
		if st.RetrainErrors > 0 || st.ConfirmsDropped > 0 {
			return st, fmt.Errorf("scenario: retrain failed or confirm lost: %d errors, %d lost", st.RetrainErrors, st.ConfirmsDropped)
		}
		caughtUp := c.TotalAlarms() >= st.Alarms && st.Retrains >= expRetrains
		if exact {
			if caughtUp && st.Windows >= expWindows && st.QualityRejected >= expRejects &&
				st.WindowsSuppressed >= expSuppressed && st.AuditSamples >= expSamples {
				if st.Windows != expWindows || st.QualityRejected != expRejects ||
					st.WindowsSuppressed != expSuppressed || st.AuditSamples != expSamples {
					return st, fmt.Errorf("scenario: drained to %d windows / %d rejects / %d suppressed / %d audits, expected exactly %d / %d / %d / %d",
						st.Windows, st.QualityRejected, st.WindowsSuppressed, st.AuditSamples,
						expWindows, expRejects, expSuppressed, expSamples)
				}
				return st, nil
			}
		} else {
			// Lossy admission: quiesce when the counters stop moving.
			if caughtUp && st.Windows == last.Windows && st.QualityRejected == last.QualityRejected &&
				st.Batches == last.Batches && st.Alarms == last.Alarms &&
				st.WindowsSuppressed == last.WindowsSuppressed && st.AuditSamples == last.AuditSamples {
				stable++
				if stable >= 20 { // ~400 ms of stillness
					return st, nil
				}
			} else {
				stable = 0
			}
			last = st
		}
		if time.Now().After(deadline) { //selflearn:wallclock-ok operational drain timeout, not replay state
			return st, fmt.Errorf("scenario: drain timed out: windows %d/%d, rejects %d/%d, retrains %d/%d",
				st.Windows, expWindows, st.QualityRejected, expRejects, st.Retrains, expRetrains)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// RunLocal builds the workload and replays it against a fresh
// in-process serve.Server configured from the spec — the path the
// pinned scenario-matrix test and cmd/loadgen's local mode use.
func RunLocal(spec Spec) (*Result, error) {
	w, err := Build(spec)
	if err != nil {
		return nil, err
	}
	c := NewCollector()
	srv, err := NewLocalServer(w, c)
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	return w.Run(localBackend{srv}, c)
}

// NewLocalServer builds a serve.Server sized and configured for the
// workload, with the collector attached as a synchronous event sink
// (no event can be dropped).
func NewLocalServer(w *Workload, c *Collector) (*serve.Server, error) {
	spec := w.Spec
	cfg := serve.Config{
		Workers:            2,
		SampleRate:         w.SampleRate,
		History:            time.Duration(spec.Duration) * time.Second,
		AvgSeizureDuration: 20 * time.Second,
		AlarmCfg: rt.Config{
			VoteWindow:   5,
			VotesToRaise: 3,
			Refractory:   time.Duration(spec.Refractory * float64(time.Second)),
			Hop:          time.Second,
		},
	}
	opts := []serve.Option{serve.WithEventSink(c.Observe), serve.WithEventBuffer(4096)}
	switch spec.Admission {
	case "drop":
		opts = append(opts, serve.WithAdmission(serve.DropOnFull()))
	case "shed":
		opts = append(opts, serve.WithAdmission(serve.ShedOldest()))
	default:
		opts = append(opts, serve.WithAdmission(serve.BlockWithDeadline(0)))
	}
	if spec.Quality != nil {
		pf, err := serve.QualityPrefilter(*spec.Quality)
		if err != nil {
			return nil, err
		}
		opts = append(opts, serve.WithPrefilter(pf))
	}
	return serve.New(cfg, opts...)
}

// LocalBackend adapts an in-process server to the engine. The caller
// owns the server's lifecycle and must have routed its events into the
// run's collector (NewLocalServer wires both).
func LocalBackend(srv *serve.Server) Backend { return localBackend{srv} }

type localBackend struct{ srv *serve.Server }

func (b localBackend) Open(p string) (Handle, error) { return b.srv.Open(p) }
func (b localBackend) Snapshot() serve.Stats         { return b.srv.Snapshot() }

// statsDelta subtracts a baseline snapshot's cumulative counters so
// scenario accounting holds against fleets that served earlier runs.
// Gauges (Sessions, StreamsOpen, ModelsCached, QueueDepth) pass
// through untouched.
func statsDelta(st, base serve.Stats) serve.Stats {
	st.SessionsCreated -= base.SessionsCreated
	st.SessionsEvicted -= base.SessionsEvicted
	st.Batches -= base.Batches
	st.BatchesDropped -= base.BatchesDropped
	st.BatchesShed -= base.BatchesShed
	st.QualityRejected -= base.QualityRejected
	st.Windows -= base.Windows
	st.Alarms -= base.Alarms
	st.Confirms -= base.Confirms
	st.ConfirmsRejected -= base.ConfirmsRejected
	st.ConfirmsDropped -= base.ConfirmsDropped
	st.Retrains -= base.Retrains
	st.RetrainErrors -= base.RetrainErrors
	st.StreamErrors -= base.StreamErrors
	st.StoreErrors -= base.StoreErrors
	st.WindowsSuppressed -= base.WindowsSuppressed
	st.AuditSamples -= base.AuditSamples
	st.AuditDisagreements -= base.AuditDisagreements
	st.PrefilterDrift -= base.PrefilterDrift
	st.EventsDropped -= base.EventsDropped
	return st
}
