package scenario

import (
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"time"

	"selflearn/internal/eval"
	"selflearn/internal/rt"
	"selflearn/internal/serve"
	"selflearn/internal/signal"
)

// Backend is the serving surface the engine replays against. The local
// implementation wraps an in-process serve.Server; cmd/loadgen supplies
// one wrapping a cluster.Router so the same scenarios drive a shardd
// fleet over TCP.
type Backend interface {
	Open(patient string) (Handle, error)
	Snapshot() serve.Stats
}

// Handle is one patient's stream handle. Push may return
// serve.ErrBackpressure, which the engine retries; any other error
// aborts the scenario. Remote implementations are expected to absorb
// their transient transport errors (failover in flight) internally.
type Handle interface {
	Push(c0, c1 []float64) error
	Confirm() error
	Close()
}

// Collector accumulates the event-side outcomes of a run: per-patient
// alarm stream times (Event.StreamTime — the deterministic clock
// detections are scored on), per-patient model versions (the retrain
// barrier), and quality rejections. Feed it every event, either as a
// synchronous sink (local) or by draining an Events channel (cluster).
type Collector struct {
	mu       sync.Mutex
	alarms   map[string][]float64
	versions map[string]uint64
	total    uint64
	rejects  uint64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{alarms: map[string][]float64{}, versions: map[string]uint64{}}
}

// Observe records one event. Safe for concurrent use; fast enough for a
// serve.WithEventSink.
func (c *Collector) Observe(ev serve.Event) {
	switch ev.Kind {
	case serve.EventAlarm:
		c.mu.Lock()
		c.alarms[ev.Patient] = append(c.alarms[ev.Patient], ev.StreamTime)
		c.total++
		c.mu.Unlock()
	case serve.EventModelUpdated:
		c.mu.Lock()
		if ev.Version > c.versions[ev.Patient] {
			c.versions[ev.Patient] = ev.Version
		}
		c.mu.Unlock()
	case serve.EventQualityReject:
		c.mu.Lock()
		c.rejects++
		c.mu.Unlock()
	}
}

// AlarmTimes returns a copy of the patient's alarm stream times.
func (c *Collector) AlarmTimes(patient string) []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]float64(nil), c.alarms[patient]...)
}

// TotalAlarms returns the number of alarm events observed.
func (c *Collector) TotalAlarms() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// WaitVersion blocks until the patient's model version reaches v — the
// confirm barrier that makes retraining deterministic: no batch pushed
// after it can race the model install.
func (c *Collector) WaitVersion(patient string, v uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout) //selflearn:wallclock-ok operational wait deadline, not replay state
	for {
		c.mu.Lock()
		cur := c.versions[patient]
		c.mu.Unlock()
		if cur >= v {
			return nil
		}
		if time.Now().After(deadline) { //selflearn:wallclock-ok operational wait deadline, not replay state
			return fmt.Errorf("scenario: %s never reached model version %d (at %d)", patient, v, cur)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// admittedMask mirrors the serving path's quality prefilter client-side:
// one bool per stream second, true when the batch would be admitted.
// The mirror must agree with serve.QualityPrefilter exactly — including
// failing open on assessment errors — because ground truth is mapped
// through it into admitted stream time.
func admittedMask(ps PatientStream, fs float64, q *signal.QualityConfig) []bool {
	n := len(ps.C0) / int(fs)
	mask := make([]bool, n)
	for i := range mask {
		mask[i] = true
		if q == nil {
			continue
		}
		lo, hi := i*int(fs), (i+1)*int(fs)
		for _, ch := range [][]float64{ps.C0[lo:hi], ps.C1[lo:hi]} {
			if r, err := signal.AssessChannel(ch, fs, *q); err == nil && !r.OK {
				mask[i] = false
				break
			}
		}
	}
	return mask
}

// admittedTime maps a stream time into admitted (post-prefilter) stream
// time: the clock the feature windows — and therefore the alarms — run
// on. prefix[i] is the number of admitted seconds before second i.
func admittedTime(t float64, mask []bool, prefix []int) float64 {
	sec := int(t)
	if sec >= len(mask) {
		return float64(prefix[len(mask)])
	}
	if mask[sec] {
		return float64(prefix[sec]) + (t - float64(sec))
	}
	return float64(prefix[sec])
}

// Run replays the workload against the backend and scores the alarms
// the collector gathered. The collector must already be receiving the
// backend's events (sink or channel drain) before Run is called.
func (w *Workload) Run(b Backend, c *Collector) (*Result, error) {
	spec := w.Spec
	fs := int(w.SampleRate)

	masks := make([][]bool, len(w.Streams))
	prefixes := make([][]int, len(w.Streams))
	var expWindows, expRejects uint64
	var streamSeconds, admittedSeconds int
	for i, ps := range w.Streams {
		masks[i] = admittedMask(ps, w.SampleRate, spec.Quality)
		prefix := make([]int, len(masks[i])+1)
		admitted := 0
		for s, ok := range masks[i] {
			prefix[s] = admitted
			if ok {
				admitted++
			} else {
				expRejects++
			}
		}
		prefix[len(masks[i])] = admitted
		prefixes[i] = prefix
		streamSeconds += len(masks[i])
		admittedSeconds += admitted
		// 4 s windows on a 1 s hop: the first window completes on the
		// fourth admitted second.
		if admitted > 3 {
			expWindows += uint64(admitted - 3)
		}
	}

	// A remote fleet's counters are cumulative across loadgen runs, so
	// account everything against the delta from here. On a fresh local
	// server the baseline is zero and this is the identity.
	base := b.Snapshot()

	var wg sync.WaitGroup
	errs := make([]error, len(w.Streams))
	for i := range w.Streams {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.runPatient(b, c, w.Streams[i], fs)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var expRetrains uint64
	if spec.Confirm {
		for _, ps := range w.Streams {
			if len(ps.Truth) > 0 {
				expRetrains++
			}
		}
	}
	st, err := awaitDrain(b, base, c, spec.Admission == "block", expWindows, expRejects, expRetrains)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Name:            spec.Name,
		Seed:            spec.Seed,
		Patients:        spec.Patients,
		Source:          w.Source,
		StreamSeconds:   float64(streamSeconds),
		AdmittedSeconds: float64(admittedSeconds),
		Windows:         st.Windows,
		QualityRejected: st.QualityRejected,
		Shed:            st.BatchesShed,
		Dropped:         st.BatchesDropped,
		Retrains:        st.Retrains,
		Alarms:          st.Alarms,
	}
	var total eval.DetectionMetrics
	for i, ps := range w.Streams {
		truth := ps.Truth
		if spec.Confirm && len(truth) > 0 {
			// The first seizure trained the detector; scoring it would
			// credit the model with the event it learned from.
			truth = truth[1:]
		}
		mapped := make([]signal.Interval, len(truth))
		for k, iv := range truth {
			mapped[k] = signal.Interval{
				Start: admittedTime(iv.Start, masks[i], prefixes[i]),
				End:   admittedTime(iv.End, masks[i], prefixes[i]),
			}
		}
		dm := eval.ScoreDetections(c.AlarmTimes(ps.ID), mapped, spec.Tolerance, float64(prefixes[i][len(masks[i])]))
		total = eval.Merge(total, dm)
	}
	res.Events = total.Events
	res.Detected = total.Detected
	res.Sensitivity = total.Sensitivity
	res.FalseAlarms = total.FalseAlarms
	res.FalseAlarmsPerHour = total.FalseAlarmsPerHour
	return res, nil
}

// runPatient replays one patient's stream in one-second batches:
// churn-segmented handle lifecycle, backpressure retries, and the
// confirm barrier after the first seizure.
func (w *Workload) runPatient(b Backend, c *Collector, ps PatientStream, fs int) error {
	spec := w.Spec
	seconds := len(ps.C0) / fs
	h, err := b.Open(ps.ID)
	if err != nil {
		return err
	}
	defer func() { h.Close() }()

	confirmAt := -1
	if spec.Confirm && len(ps.Truth) > 0 {
		confirmAt = int(math.Ceil(ps.Truth[0].End)) + 10
		if confirmAt >= seconds {
			confirmAt = seconds - 1
		}
	}
	segment := seconds
	if spec.Churn.Reopens > 0 {
		segment = seconds / (spec.Churn.Reopens + 1)
		if segment < 1 {
			segment = 1
		}
	}
	for sec := 0; sec < seconds; sec++ {
		if sec > 0 && sec%segment == 0 && spec.Churn.Reopens > 0 {
			// Handle churn: the gateway reconnects; the server-side
			// session (streamer state, model, history) must survive.
			h.Close()
			if h, err = b.Open(ps.ID); err != nil {
				return err
			}
		}
		lo := sec * fs
		if err := pushRetry(h, ps.C0[lo:lo+fs], ps.C1[lo:lo+fs]); err != nil {
			return fmt.Errorf("scenario: %s second %d: %w", ps.ID, sec, err)
		}
		if sec == confirmAt {
			if err := confirmRetry(h); err != nil {
				return fmt.Errorf("scenario: %s confirm: %w", ps.ID, err)
			}
			if err := c.WaitVersion(ps.ID, 1, 90*time.Second); err != nil {
				return err
			}
		}
		if w.Speed > 0 {
			interval := float64(time.Second) / w.Speed
			if p := spec.Wave.Period; p >= 1 {
				// Diurnal trough: half rate through the second half of
				// each wave period, phase-shifted per patient so the
				// backend sees a rolling wave, not synchronized bursts.
				if math.Mod(float64(sec)+wavePhase(ps.ID, p), p) >= p/2 {
					interval *= 2
				}
			}
			time.Sleep(time.Duration(interval))
		}
	}
	return nil
}

// wavePhase offsets a patient's position in the load wave, derived
// from the ID so it is stable across runs.
func wavePhase(id string, period float64) float64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return float64(h.Sum64() % uint64(period))
}

func pushRetry(h Handle, c0, c1 []float64) error {
	for {
		err := h.Push(c0, c1)
		if err != serve.ErrBackpressure {
			return err
		}
		time.Sleep(time.Millisecond)
	}
}

func confirmRetry(h Handle) error {
	for {
		err := h.Confirm()
		if err != serve.ErrBackpressure {
			return err
		}
		time.Sleep(time.Millisecond)
	}
}

// awaitDrain waits until the backend has processed everything the
// scenario pushed and the collector has seen every alarm event. With
// lossless (block) admission the expected counters are exact and are
// verified; with drop/shed admission the run waits for the counters to
// go quiescent instead.
func awaitDrain(b Backend, base serve.Stats, c *Collector, exact bool, expWindows, expRejects, expRetrains uint64) (serve.Stats, error) {
	deadline := time.Now().Add(120 * time.Second) //selflearn:wallclock-ok operational drain timeout, not replay state
	var last serve.Stats
	stable := 0
	for {
		st := statsDelta(b.Snapshot(), base)
		if st.RetrainErrors > 0 || st.ConfirmsDropped > 0 {
			return st, fmt.Errorf("scenario: retrain failed or confirm lost: %d errors, %d lost", st.RetrainErrors, st.ConfirmsDropped)
		}
		caughtUp := c.TotalAlarms() >= st.Alarms && st.Retrains >= expRetrains
		if exact {
			if caughtUp && st.Windows >= expWindows && st.QualityRejected >= expRejects {
				if st.Windows != expWindows || st.QualityRejected != expRejects {
					return st, fmt.Errorf("scenario: drained to %d windows / %d rejects, expected exactly %d / %d",
						st.Windows, st.QualityRejected, expWindows, expRejects)
				}
				return st, nil
			}
		} else {
			// Lossy admission: quiesce when the counters stop moving.
			if caughtUp && st.Windows == last.Windows && st.QualityRejected == last.QualityRejected &&
				st.Batches == last.Batches && st.Alarms == last.Alarms {
				stable++
				if stable >= 20 { // ~400 ms of stillness
					return st, nil
				}
			} else {
				stable = 0
			}
			last = st
		}
		if time.Now().After(deadline) { //selflearn:wallclock-ok operational drain timeout, not replay state
			return st, fmt.Errorf("scenario: drain timed out: windows %d/%d, rejects %d/%d, retrains %d/%d",
				st.Windows, expWindows, st.QualityRejected, expRejects, st.Retrains, expRetrains)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// RunLocal builds the workload and replays it against a fresh
// in-process serve.Server configured from the spec — the path the
// pinned scenario-matrix test and cmd/loadgen's local mode use.
func RunLocal(spec Spec) (*Result, error) {
	w, err := Build(spec)
	if err != nil {
		return nil, err
	}
	c := NewCollector()
	srv, err := NewLocalServer(w, c)
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	return w.Run(localBackend{srv}, c)
}

// NewLocalServer builds a serve.Server sized and configured for the
// workload, with the collector attached as a synchronous event sink
// (no event can be dropped).
func NewLocalServer(w *Workload, c *Collector) (*serve.Server, error) {
	spec := w.Spec
	cfg := serve.Config{
		Workers:            2,
		SampleRate:         w.SampleRate,
		History:            time.Duration(spec.Duration) * time.Second,
		AvgSeizureDuration: 20 * time.Second,
		AlarmCfg: rt.Config{
			VoteWindow:   5,
			VotesToRaise: 3,
			Refractory:   time.Duration(spec.Refractory * float64(time.Second)),
			Hop:          time.Second,
		},
	}
	opts := []serve.Option{serve.WithEventSink(c.Observe), serve.WithEventBuffer(4096)}
	switch spec.Admission {
	case "drop":
		opts = append(opts, serve.WithAdmission(serve.DropOnFull()))
	case "shed":
		opts = append(opts, serve.WithAdmission(serve.ShedOldest()))
	default:
		opts = append(opts, serve.WithAdmission(serve.BlockWithDeadline(0)))
	}
	if spec.Quality != nil {
		pf, err := serve.QualityPrefilter(*spec.Quality)
		if err != nil {
			return nil, err
		}
		opts = append(opts, serve.WithPrefilter(pf))
	}
	return serve.New(cfg, opts...)
}

// LocalBackend adapts an in-process server to the engine. The caller
// owns the server's lifecycle and must have routed its events into the
// run's collector (NewLocalServer wires both).
func LocalBackend(srv *serve.Server) Backend { return localBackend{srv} }

type localBackend struct{ srv *serve.Server }

func (b localBackend) Open(p string) (Handle, error) { return b.srv.Open(p) }
func (b localBackend) Snapshot() serve.Stats         { return b.srv.Snapshot() }

// statsDelta subtracts a baseline snapshot's cumulative counters so
// scenario accounting holds against fleets that served earlier runs.
// Gauges (Sessions, StreamsOpen, ModelsCached, QueueDepth) pass
// through untouched.
func statsDelta(st, base serve.Stats) serve.Stats {
	st.SessionsCreated -= base.SessionsCreated
	st.SessionsEvicted -= base.SessionsEvicted
	st.Batches -= base.Batches
	st.BatchesDropped -= base.BatchesDropped
	st.BatchesShed -= base.BatchesShed
	st.QualityRejected -= base.QualityRejected
	st.Windows -= base.Windows
	st.Alarms -= base.Alarms
	st.Confirms -= base.Confirms
	st.ConfirmsRejected -= base.ConfirmsRejected
	st.ConfirmsDropped -= base.ConfirmsDropped
	st.Retrains -= base.Retrains
	st.RetrainErrors -= base.RetrainErrors
	st.StreamErrors -= base.StreamErrors
	st.StoreErrors -= base.StoreErrors
	st.EventsDropped -= base.EventsDropped
	return st
}
