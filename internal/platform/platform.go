// Package platform models the target wearable: an STM32L151
// (ARM Cortex-M3, 32 MHz, 48 KB RAM, 384 KB flash) with an ADS1299-4
// analog front end sampling two electrode pairs and a 570 mAh battery.
//
// The model is analytic in the currents and duty cycles the paper
// publishes in Section V-B and Table III, and therefore reproduces the
// paper's battery-lifetime results exactly:
//
//   - EEG acquisition (two ADS1299 channels): 0.870 mA at 100 % duty.
//   - CPU active (supervised detection or a-posteriori labeling):
//     10.5 mA. The real-time detector needs 3 s per 4 s window → 75 %
//     duty; the labeling algorithm processes one second of signal per
//     second → its duty is one hour per seizure.
//   - CPU idle: 0.018 mA on the remaining duty.
package platform

import (
	"errors"
	"fmt"
)

// Published constants of the target platform (Section V-B, Table III).
const (
	// BatteryCapacityMAh is the battery capacity.
	BatteryCapacityMAh = 570.0
	// AcquisitionCurrentMA is the two-channel ADS1299 front-end current.
	AcquisitionCurrentMA = 0.870
	// ActiveCurrentMA is the MCU current while processing.
	ActiveCurrentMA = 10.5
	// IdleCurrentMA is the MCU current while idle.
	IdleCurrentMA = 0.018
	// DetectionDuty is the real-time detector's CPU duty cycle (3 s of
	// processing per 4 s window).
	DetectionDuty = 0.75
	// RAMKB and FlashKB are the memory sizes of the STM32L151.
	RAMKB   = 48
	FlashKB = 384
	// HourBufferKB is the paper's figure for buffering one hour of EEG
	// data for the a-posteriori algorithm.
	HourBufferKB = 240
	// CPUFreqMHz is the maximum MCU clock.
	CPUFreqMHz = 32
)

// Task is one consumer in the energy budget.
type Task struct {
	Name      string
	CurrentMA float64
	// Duty is the fraction of time the task draws CurrentMA, in [0, 1].
	Duty float64
}

// AvgCurrentMA returns the task's time-averaged current.
func (t Task) AvgCurrentMA() float64 { return t.CurrentMA * t.Duty }

// LabelingDuty returns the CPU duty cycle of the a-posteriori labeling
// algorithm for a given seizure frequency: each seizure costs one hour of
// processing (one second of signal per second of compute on one hour of
// buffered EEG).
func LabelingDuty(seizuresPerDay float64) (float64, error) {
	if seizuresPerDay < 0 {
		return 0, fmt.Errorf("platform: negative seizure frequency %g", seizuresPerDay)
	}
	d := seizuresPerDay * 3600 / 86400
	if d > 1 {
		return 0, fmt.Errorf("platform: seizure frequency %g/day exceeds continuous labeling", seizuresPerDay)
	}
	return d, nil
}

// Scenario is a complete duty-cycle budget for the device.
type Scenario struct {
	Name  string
	Tasks []Task
}

// Validate checks duty-cycle sanity: every duty in [0, 1] and the CPU
// tasks (everything but acquisition) summing to at most 1.
func (s Scenario) Validate() error {
	if len(s.Tasks) == 0 {
		return errors.New("platform: scenario has no tasks")
	}
	cpu := 0.0
	for _, t := range s.Tasks {
		if t.Duty < 0 || t.Duty > 1 {
			return fmt.Errorf("platform: task %q duty %g outside [0, 1]", t.Name, t.Duty)
		}
		if t.CurrentMA < 0 {
			return fmt.Errorf("platform: task %q negative current", t.Name)
		}
		if t.Name != acquisitionName {
			cpu += t.Duty
		}
	}
	if cpu > 1+1e-9 {
		return fmt.Errorf("platform: CPU duty cycles sum to %g > 1", cpu)
	}
	return nil
}

// AvgCurrentMA returns the scenario's total time-averaged current.
func (s Scenario) AvgCurrentMA() float64 {
	var sum float64
	for _, t := range s.Tasks {
		sum += t.AvgCurrentMA()
	}
	return sum
}

// LifetimeHours returns the battery lifetime on capacity mAh.
func (s Scenario) LifetimeHours(capacityMAh float64) float64 {
	avg := s.AvgCurrentMA()
	if avg <= 0 {
		return 0
	}
	return capacityMAh / avg
}

// LifetimeDays returns LifetimeHours/24.
func (s Scenario) LifetimeDays(capacityMAh float64) float64 {
	return s.LifetimeHours(capacityMAh) / 24
}

// EnergyShares returns each task's fraction of the total average current
// (the quantity Fig. 5 plots), in task order.
func (s Scenario) EnergyShares() []float64 {
	total := s.AvgCurrentMA()
	out := make([]float64, len(s.Tasks))
	if total == 0 {
		return out
	}
	for i, t := range s.Tasks {
		out[i] = t.AvgCurrentMA() / total
	}
	return out
}

const (
	acquisitionName = "EEG Acquisition (x2)"
	detectionName   = "EEG Sup. Detection"
	labelingName    = "EEG Labeling"
	idleName        = "Idle"
)

// AcquisitionTask returns the always-on analog front end task.
func AcquisitionTask() Task {
	return Task{Name: acquisitionName, CurrentMA: AcquisitionCurrentMA, Duty: 1}
}

// DetectionTask returns the real-time supervised detector task.
func DetectionTask() Task {
	return Task{Name: detectionName, CurrentMA: ActiveCurrentMA, Duty: DetectionDuty}
}

// LabelingTask returns the a-posteriori labeling task at the given
// seizure frequency.
func LabelingTask(seizuresPerDay float64) (Task, error) {
	d, err := LabelingDuty(seizuresPerDay)
	if err != nil {
		return Task{}, err
	}
	return Task{Name: labelingName, CurrentMA: ActiveCurrentMA, Duty: d}, nil
}

// IdleTask returns the MCU idle task filling the CPU duty remainder.
func IdleTask(cpuBusyDuty float64) (Task, error) {
	if cpuBusyDuty < 0 || cpuBusyDuty > 1 {
		return Task{}, fmt.Errorf("platform: CPU busy duty %g outside [0, 1]", cpuBusyDuty)
	}
	return Task{Name: idleName, CurrentMA: IdleCurrentMA, Duty: 1 - cpuBusyDuty}, nil
}

// LabelingOnly builds the scenario that runs only acquisition plus the
// a-posteriori labeling algorithm (Section VI-C's 26.31–17.92-day range).
func LabelingOnly(seizuresPerDay float64) (Scenario, error) {
	lab, err := LabelingTask(seizuresPerDay)
	if err != nil {
		return Scenario{}, err
	}
	idle, err := IdleTask(lab.Duty)
	if err != nil {
		return Scenario{}, err
	}
	s := Scenario{
		Name:  fmt.Sprintf("labeling-only @ %g seizures/day", seizuresPerDay),
		Tasks: []Task{AcquisitionTask(), lab, idle},
	}
	return s, s.Validate()
}

// DetectionOnly builds the scenario running only acquisition plus the
// real-time detector (65.15 h = 2.71 days).
func DetectionOnly() Scenario {
	det := DetectionTask()
	idle, _ := IdleTask(det.Duty)
	return Scenario{Name: "detection-only", Tasks: []Task{AcquisitionTask(), det, idle}}
}

// Combined builds the full self-learning scenario of Table III:
// acquisition, real-time detection, a-posteriori labeling and idle.
func Combined(seizuresPerDay float64) (Scenario, error) {
	det := DetectionTask()
	lab, err := LabelingTask(seizuresPerDay)
	if err != nil {
		return Scenario{}, err
	}
	idle, err := IdleTask(det.Duty + lab.Duty)
	if err != nil {
		return Scenario{}, err
	}
	s := Scenario{
		Name:  fmt.Sprintf("combined @ %g seizures/day", seizuresPerDay),
		Tasks: []Task{AcquisitionTask(), det, lab, idle},
	}
	return s, s.Validate()
}

// MemoryBudget checks the paper's memory claim: the one-hour EEG buffer
// must fit in flash alongside the firmware, and the working set in RAM.
type MemoryBudget struct {
	RAMKB, FlashKB int
}

// STM32L151Budget returns the target MCU's memory budget.
func STM32L151Budget() MemoryBudget {
	return MemoryBudget{RAMKB: RAMKB, FlashKB: FlashKB}
}

// FitsHourBuffer reports whether a buffer of bufKB fits in flash.
func (m MemoryBudget) FitsHourBuffer(bufKB int) bool {
	return bufKB >= 0 && bufKB <= m.FlashKB
}

// FeatureBufferKB returns the storage needed for an L×F feature matrix
// at bytesPerValue bytes, rounded up to whole KB. It shows the paper's
// 240 KB hour buffer is feature-domain storage (an hour of 10 features at
// one-second hops is ~144 KB of float32s plus per-window bookkeeping),
// not raw EEG (which would be ~3.6 MB).
func FeatureBufferKB(l, f, bytesPerValue int) (int, error) {
	if l < 0 || f < 0 || bytesPerValue <= 0 {
		return 0, fmt.Errorf("platform: invalid buffer shape %d×%d×%d", l, f, bytesPerValue)
	}
	bytes := l * f * bytesPerValue
	return (bytes + 1023) / 1024, nil
}

// SecondsToProcessLabeling returns the wall-clock seconds the labeling
// algorithm needs for signalSeconds of buffered signal on this platform
// (the paper's "one second of signal is processed in one second time").
func SecondsToProcessLabeling(signalSeconds float64) float64 {
	return signalSeconds
}
