package platform

import (
	"math"
	"testing"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", what, got, want, tol)
	}
}

func TestLabelingDuty(t *testing.T) {
	// One seizure/day -> 4.17 %; one per 30-day month -> 0.14 % (paper).
	d, err := LabelingDuty(1)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, d*100, 4.17, 0.01, "duty @ 1/day (%)")
	d, err = LabelingDuty(1.0 / 30)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, d*100, 0.14, 0.01, "duty @ 1/month (%)")
	if _, err := LabelingDuty(-1); err == nil {
		t.Error("negative frequency should fail")
	}
	if _, err := LabelingDuty(25); err == nil {
		t.Error("more than continuous labeling should fail")
	}
}

func TestTableIIIWorstCase(t *testing.T) {
	// Table III: one seizure per day.
	s, err := Combined(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Tasks) != 4 {
		t.Fatalf("want 4 tasks, got %d", len(s.Tasks))
	}
	// Average currents per row of Table III.
	approx(t, s.Tasks[0].AvgCurrentMA(), 0.870, 1e-9, "acquisition avg mA")
	approx(t, s.Tasks[1].AvgCurrentMA(), 7.875, 1e-9, "detection avg mA")
	approx(t, s.Tasks[2].AvgCurrentMA(), 0.438, 0.001, "labeling avg mA")
	approx(t, s.Tasks[3].AvgCurrentMA(), 0.004, 0.0005, "idle avg mA")
	// Battery lifetime: 2.59 days.
	approx(t, s.LifetimeDays(BatteryCapacityMAh), 2.59, 0.005, "lifetime days")
	// Energy shares per Fig. 5: 9.47 %, 85.72 %, 4.77 %, 0.04 %.
	shares := s.EnergyShares()
	wantShares := []float64{0.0947, 0.8572, 0.0477, 0.0004}
	for i, want := range wantShares {
		approx(t, shares[i], want, 0.0005, "energy share "+s.Tasks[i].Name)
	}
	var sum float64
	for _, v := range shares {
		sum += v
	}
	approx(t, sum, 1, 1e-12, "share sum")
}

func TestLabelingOnlyLifetimeRange(t *testing.T) {
	// Section VI-C: 631.46 h (1/month) down to 430.16 h (1/day).
	month, err := LabelingOnly(1.0 / 30)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, month.LifetimeHours(BatteryCapacityMAh), 631.46, 0.5, "labeling-only @1/month hours")
	approx(t, month.LifetimeHours(BatteryCapacityMAh)/24, 26.31, 0.05, "labeling-only @1/month days")
	day, err := LabelingOnly(1)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, day.LifetimeHours(BatteryCapacityMAh), 430.16, 0.5, "labeling-only @1/day hours")
	approx(t, day.LifetimeHours(BatteryCapacityMAh)/24, 17.92, 0.05, "labeling-only @1/day days")
}

func TestDetectionOnlyLifetime(t *testing.T) {
	// Section VI-C: 65.15 h = 2.71 days.
	s := DetectionOnly()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	approx(t, s.LifetimeHours(BatteryCapacityMAh), 65.15, 0.05, "detection-only hours")
	approx(t, s.LifetimeDays(BatteryCapacityMAh), 2.71, 0.01, "detection-only days")
}

func TestCombinedRange(t *testing.T) {
	// Section VI-C: combined lifetime between 2.71 (1/month) and 2.59
	// (1/day) days.
	month, err := Combined(1.0 / 30)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, month.LifetimeDays(BatteryCapacityMAh), 2.71, 0.01, "combined @1/month days")
	day, err := Combined(1)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, day.LifetimeDays(BatteryCapacityMAh), 2.59, 0.01, "combined @1/day days")
	if month.LifetimeDays(BatteryCapacityMAh) <= day.LifetimeDays(BatteryCapacityMAh) {
		t.Error("rarer seizures must give longer lifetime")
	}
}

func TestScenarioValidate(t *testing.T) {
	if (Scenario{}).Validate() == nil {
		t.Error("empty scenario should fail")
	}
	bad := Scenario{Tasks: []Task{{Name: "x", CurrentMA: 1, Duty: 1.5}}}
	if bad.Validate() == nil {
		t.Error("duty > 1 should fail")
	}
	bad = Scenario{Tasks: []Task{{Name: "x", CurrentMA: -1, Duty: 0.5}}}
	if bad.Validate() == nil {
		t.Error("negative current should fail")
	}
	bad = Scenario{Tasks: []Task{
		{Name: "a", CurrentMA: 1, Duty: 0.7},
		{Name: "b", CurrentMA: 1, Duty: 0.7},
	}}
	if bad.Validate() == nil {
		t.Error("CPU oversubscription should fail")
	}
	// Acquisition is not CPU time and may coexist with full CPU duty.
	ok := Scenario{Tasks: []Task{
		AcquisitionTask(),
		{Name: "b", CurrentMA: 1, Duty: 1.0},
	}}
	if err := ok.Validate(); err != nil {
		t.Errorf("acquisition should not count toward CPU duty: %v", err)
	}
}

func TestIdleTask(t *testing.T) {
	idle, err := IdleTask(0.75)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, idle.Duty, 0.25, 1e-12, "idle duty")
	if _, err := IdleTask(1.2); err == nil {
		t.Error("busy > 1 should fail")
	}
	if _, err := IdleTask(-0.1); err == nil {
		t.Error("busy < 0 should fail")
	}
}

func TestLifetimeZeroCurrent(t *testing.T) {
	s := Scenario{Tasks: []Task{{Name: "x", CurrentMA: 0, Duty: 1}}}
	if s.LifetimeHours(570) != 0 {
		t.Error("zero current should return 0 lifetime (guard, not +Inf)")
	}
	if shares := s.EnergyShares(); shares[0] != 0 {
		t.Error("zero-current shares should be zero")
	}
}

func TestMemoryBudget(t *testing.T) {
	b := STM32L151Budget()
	if b.RAMKB != 48 || b.FlashKB != 384 {
		t.Errorf("budget = %+v", b)
	}
	if !b.FitsHourBuffer(HourBufferKB) {
		t.Error("the paper's 240 KB hour buffer must fit in 384 KB flash")
	}
	if b.FitsHourBuffer(400) {
		t.Error("400 KB should not fit")
	}
	if b.FitsHourBuffer(-1) {
		t.Error("negative size should not fit")
	}
}

func TestFeatureBufferKB(t *testing.T) {
	// One hour of 10 features at 1 s hop, float32: 3600·10·4 = 144 KB.
	kb, err := FeatureBufferKB(3600, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if kb != 141 { // 144000 B = 140.6 KB
		t.Errorf("feature buffer = %d KB, want 141", kb)
	}
	if kb > HourBufferKB {
		t.Error("feature-domain storage must fit the paper's 240 KB budget")
	}
	if _, err := FeatureBufferKB(-1, 10, 4); err == nil {
		t.Error("negative shape should fail")
	}
	if _, err := FeatureBufferKB(10, 10, 0); err == nil {
		t.Error("zero bytes-per-value should fail")
	}
}

func TestSecondsToProcessLabeling(t *testing.T) {
	if SecondsToProcessLabeling(3600) != 3600 {
		t.Error("labeling processes one second of signal per second")
	}
}
