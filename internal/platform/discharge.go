package platform

import (
	"fmt"
	"math"
	"math/rand"
)

// DischargeResult summarises a Monte-Carlo battery-discharge simulation.
type DischargeResult struct {
	// MeanDays, MinDays and MaxDays summarise time-to-empty across
	// trials.
	MeanDays, MinDays, MaxDays float64
	// Trials is the number of simulated discharges.
	Trials int
}

// SimulateDischarge Monte-Carlo-simulates the battery under stochastic
// seizure occurrence: seizures arrive as a Poisson process with the
// given daily rate, each triggering one hour of labeling computation on
// top of continuous acquisition and real-time detection. The analytic
// Combined() scenario is this simulation's expectation; the simulation
// adds the spread that burst-y seizure clusters produce.
func SimulateDischarge(seizuresPerDay, capacityMAh float64, trials int, seed int64) (*DischargeResult, error) {
	if seizuresPerDay < 0 {
		return nil, fmt.Errorf("platform: negative seizure rate %g", seizuresPerDay)
	}
	if capacityMAh <= 0 {
		return nil, fmt.Errorf("platform: invalid capacity %g", capacityMAh)
	}
	if trials < 1 {
		return nil, fmt.Errorf("platform: invalid trial count %d", trials)
	}
	rng := rand.New(rand.NewSource(seed))
	// Hourly base drain without labeling: acquisition + detection + idle
	// on the detection remainder.
	base := AcquisitionCurrentMA + ActiveCurrentMA*DetectionDuty + IdleCurrentMA*(1-DetectionDuty)
	// Labeling converts idle duty into active duty; with the detector
	// occupying 75 % of the CPU, at most the idle remainder per hour can
	// go to labeling, so each seizure's one CPU-hour of labeling drains
	// from a backlog over the following hours (exactly how a firmware
	// scheduler would run it).
	idleDuty := 1 - DetectionDuty
	extraPerActiveHour := (ActiveCurrentMA - IdleCurrentMA)
	hourlyRate := seizuresPerDay / 24

	res := &DischargeResult{Trials: trials, MinDays: 1e18}
	var total float64
	for tr := 0; tr < trials; tr++ {
		remaining := capacityMAh
		hours := 0.0
		backlog := 0.0 // CPU-hours of labeling still to run
		for remaining > 0 {
			// Poisson arrivals within the hour: each seizure enqueues
			// one CPU-hour of labeling, P(>=1) = 1 − e^(−rate) with
			// multiplicity approximated by the rate (rates ≪ 1/hour in
			// all realistic settings).
			if hourlyRate > 0 && rng.Float64() < 1-math.Exp(-hourlyRate) {
				backlog += 1
			}
			run := math.Min(backlog, idleDuty)
			backlog -= run
			drain := base + run*extraPerActiveHour
			if remaining < drain {
				hours += remaining / drain
				remaining = 0
				break
			}
			remaining -= drain
			hours++
		}
		days := hours / 24
		total += days
		if days < res.MinDays {
			res.MinDays = days
		}
		if days > res.MaxDays {
			res.MaxDays = days
		}
	}
	res.MeanDays = total / float64(trials)
	return res, nil
}
