package platform

import (
	"math"
	"testing"
)

func TestNaiveLabelingOps(t *testing.T) {
	// L=100, W=10, F=2: 90·10·22.5·2 = 40500.
	ops, err := NaiveLabelingOps(100, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ops-40500) > 1 {
		t.Errorf("ops = %g, want 40500", ops)
	}
	if _, err := NaiveLabelingOps(0, 1, 1); err == nil {
		t.Error("L=0 should fail")
	}
	if _, err := NaiveLabelingOps(10, 10, 1); err == nil {
		t.Error("W=L should fail")
	}
	if _, err := NaiveLabelingOps(10, 2, 0); err == nil {
		t.Error("F=0 should fail")
	}
}

func TestFastOpsFarBelowNaive(t *testing.T) {
	naive, err := NaiveLabelingOps(3600, 60, 10)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := FastLabelingOps(3600, 60, 10)
	if err != nil {
		t.Fatal(err)
	}
	if fast >= naive/100 {
		t.Errorf("fast %g should be >=100x below naive %g", fast, naive)
	}
}

func TestPaperRealTimeClaim(t *testing.T) {
	// Section IV: "one second of signal is processed in one second time"
	// on the STM32L151. The soft-float naive implementation on a one-hour
	// buffer with W=60 and F=10 must keep its real-time factor at or
	// below 1 (and plausibly close to it — this is why the paper budgets
	// a 100 % labeling duty cycle per buffered hour).
	m := SoftFloatM3()
	rtf, err := m.RealTimeFactor(3600, 60, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	if rtf > 1 {
		t.Errorf("soft-float naive real-time factor %g > 1 contradicts the paper", rtf)
	}
	if rtf < 0.2 {
		t.Errorf("real-time factor %g implausibly low for a 32 MHz soft-float M3", rtf)
	}
}

func TestFixedPointHeadroom(t *testing.T) {
	// The Q15 port buys roughly an order of magnitude.
	soft := SoftFloatM3()
	fixed := FixedPointM3()
	rtfSoft, err := soft.RealTimeFactor(3600, 60, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	rtfFixed, err := fixed.RealTimeFactor(3600, 60, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	if rtfFixed >= rtfSoft/5 {
		t.Errorf("fixed point %g should be ≥5x faster than soft float %g", rtfFixed, rtfSoft)
	}
}

func TestFastAlgorithmTrivialOnM3(t *testing.T) {
	// The exact O(L·W·F) decomposition makes even the soft-float port
	// negligible next to the hour-long buffer.
	m := SoftFloatM3()
	rtf, err := m.RealTimeFactor(3600, 60, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if rtf > 0.01 {
		t.Errorf("fast real-time factor %g, want < 0.01", rtf)
	}
}

func TestSecondsScalesLinearly(t *testing.T) {
	m := FixedPointM3()
	if s := m.Seconds(0); s != 0 {
		t.Error("zero ops should be zero seconds")
	}
	if m.Seconds(2e6) != 2*m.Seconds(1e6) {
		t.Error("seconds must be linear in ops")
	}
}

func TestRealTimeFactorErrors(t *testing.T) {
	m := SoftFloatM3()
	if _, err := m.RealTimeFactor(10, 60, 10, true); err == nil {
		t.Error("W >= L should fail")
	}
}
