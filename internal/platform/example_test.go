package platform_test

import (
	"fmt"

	"selflearn/internal/platform"
)

// ExampleCombined reproduces the paper's headline battery-lifetime
// figure: the full self-learning pipeline at one seizure per day runs
// 2.59 days on the 570 mAh battery.
func ExampleCombined() {
	s, err := platform.Combined(1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.2f days\n", s.LifetimeDays(platform.BatteryCapacityMAh))
	// Output:
	// 2.59 days
}

// ExampleLabelingDuty shows the duty-cycle arithmetic of Section VI-C.
func ExampleLabelingDuty() {
	day, _ := platform.LabelingDuty(1)
	month, _ := platform.LabelingDuty(1.0 / 30)
	fmt.Printf("1/day: %.2f %%, 1/month: %.2f %%\n", 100*day, 100*month)
	// Output:
	// 1/day: 4.17 %, 1/month: 0.14 %
}
