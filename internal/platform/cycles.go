package platform

import "fmt"

// CycleModel estimates instruction-cycle budgets for the labeling kernel
// on a Cortex-M3-class MCU. The STM32L151 has no FPU, so floating-point
// inner loops run as software routines at tens of cycles per operation,
// while a Q15 fixed-point port runs at a handful.
type CycleModel struct {
	// Name identifies the arithmetic flavor.
	Name string
	// CyclesPerAbsDiffAcc is the cycle cost of one inner-loop step of
	// Algorithm 1 (load two operands, subtract, absolute value,
	// accumulate).
	CyclesPerAbsDiffAcc float64
	// ClockHz is the CPU clock.
	ClockHz float64
}

// SoftFloatM3 models the paper's implementation: software
// double-precision arithmetic on the 32 MHz Cortex-M3 (a soft-float
// add/sub plus abs and accumulate costs on the order of 50 cycles).
func SoftFloatM3() CycleModel {
	return CycleModel{Name: "soft-float", CyclesPerAbsDiffAcc: 50, ClockHz: CPUFreqMHz * 1e6}
}

// FixedPointM3 models a Q15 port (internal/fixedpoint): subtract, abs
// and 32-bit accumulate in a handful of single-cycle integer
// instructions plus loads.
func FixedPointM3() CycleModel {
	return CycleModel{Name: "q15-fixed", CyclesPerAbsDiffAcc: 6, ClockHz: CPUFreqMHz * 1e6}
}

// NaiveLabelingOps returns the inner-loop step count of the pseudocode
// implementation of Algorithm 1 for a feature matrix of l points, window
// w and f features: (L−W) window positions × W inside points × (L−W)/4
// outside points × F features.
func NaiveLabelingOps(l, w, f int) (float64, error) {
	if l <= 0 || f <= 0 || w < 1 || w >= l {
		return 0, fmt.Errorf("platform: invalid labeling shape L=%d W=%d F=%d", l, w, f)
	}
	positions := float64(l - w)
	return positions * float64(w) * (positions / 4) * float64(f), nil
}

// FastLabelingOps returns the step count of the exact O(L·W·F)
// decomposition (internal/core.Label): per slide, O(W + W/4) updates per
// feature, plus the O(L log L) prefix construction folded into the
// constant.
func FastLabelingOps(l, w, f int) (float64, error) {
	if l <= 0 || f <= 0 || w < 1 || w >= l {
		return 0, fmt.Errorf("platform: invalid labeling shape L=%d W=%d F=%d", l, w, f)
	}
	return float64(l) * (1.25 * float64(w)) * float64(f), nil
}

// Seconds converts an op count to wall-clock seconds under the model.
func (m CycleModel) Seconds(ops float64) float64 {
	return ops * m.CyclesPerAbsDiffAcc / m.ClockHz
}

// RealTimeFactor returns processing seconds per second of signal for a
// buffer of signalSeconds at one feature point per second: the paper's
// "one second of signal is processed in one second" corresponds to a
// factor <= 1 for the soft-float naive implementation on a one-hour
// buffer.
func (m CycleModel) RealTimeFactor(signalSeconds float64, w, f int, naive bool) (float64, error) {
	l := int(signalSeconds)
	var ops float64
	var err error
	if naive {
		ops, err = NaiveLabelingOps(l, w, f)
	} else {
		ops, err = FastLabelingOps(l, w, f)
	}
	if err != nil {
		return 0, err
	}
	return m.Seconds(ops) / signalSeconds, nil
}
