package platform

import (
	"math"
	"testing"
)

func TestSimulateDischargeMatchesAnalytic(t *testing.T) {
	// With one seizure per day the Monte-Carlo mean must track the
	// analytic Combined() lifetime (2.59 days) closely. The hour-
	// granular trigger model fires labeling in any hour containing >=1
	// seizure, which at low rates matches the analytic duty cycle.
	sim, err := SimulateDischarge(1, BatteryCapacityMAh, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	analytic, err := Combined(1)
	if err != nil {
		t.Fatal(err)
	}
	want := analytic.LifetimeDays(BatteryCapacityMAh)
	if math.Abs(sim.MeanDays-want) > 0.05 {
		t.Errorf("simulated mean %.3f days vs analytic %.3f", sim.MeanDays, want)
	}
	if sim.MinDays > sim.MeanDays || sim.MaxDays < sim.MeanDays {
		t.Errorf("min/mean/max ordering broken: %+v", sim)
	}
}

func TestSimulateDischargeZeroSeizures(t *testing.T) {
	// No seizures: deterministic detection-only lifetime, zero spread.
	sim, err := SimulateDischarge(0, BatteryCapacityMAh, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	det := DetectionOnly()
	want := det.LifetimeDays(BatteryCapacityMAh)
	if math.Abs(sim.MeanDays-want) > 0.01 {
		t.Errorf("zero-seizure mean %.3f vs detection-only %.3f", sim.MeanDays, want)
	}
	if sim.MaxDays-sim.MinDays > 1e-9 {
		t.Errorf("zero-rate simulation should be deterministic, spread %g", sim.MaxDays-sim.MinDays)
	}
}

func TestSimulateDischargeMoreSeizuresShorterLife(t *testing.T) {
	rare, err := SimulateDischarge(1.0/30, BatteryCapacityMAh, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	frequent, err := SimulateDischarge(6, BatteryCapacityMAh, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if frequent.MeanDays >= rare.MeanDays {
		t.Errorf("6/day (%.3f d) should drain faster than 1/month (%.3f d)",
			frequent.MeanDays, rare.MeanDays)
	}
}

func TestSimulateDischargeDeterministicSeed(t *testing.T) {
	a, err := SimulateDischarge(1, 570, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateDischarge(1, 570, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanDays != b.MeanDays || a.MinDays != b.MinDays {
		t.Error("same seed must reproduce the simulation")
	}
}

func TestSimulateDischargeErrors(t *testing.T) {
	if _, err := SimulateDischarge(-1, 570, 10, 1); err == nil {
		t.Error("negative rate should fail")
	}
	if _, err := SimulateDischarge(1, 0, 10, 1); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := SimulateDischarge(1, 570, 0, 1); err == nil {
		t.Error("zero trials should fail")
	}
}
