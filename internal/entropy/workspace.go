package entropy

import (
	"fmt"
	"math"
	"slices"

	"selflearn/internal/stats"
)

// Workspace owns the reusable scratch of the entropy estimators: the
// ordinal-pattern tally of permutation entropy, the amplitude histogram
// behind Rényi/Shannon, and the sorted index buffer of the sample
// entropy fast path. All methods produce results bit-identical to the
// package-level functions while allocating nothing in steady state. The
// zero value is ready to use; a Workspace is not safe for concurrent
// use — give each streaming extractor its own.
type Workspace struct {
	counts map[uint64]int
	cs     []int
	hist   []int
	order  []int32
}

// Permutation is the workspace form of the package-level Permutation.
//
//selflearn:hotpath
func (ws *Workspace) Permutation(xs []float64, n int) (float64, error) {
	if n < 2 {
		return 0, fmt.Errorf("entropy: permutation order must be >= 2, got %d", n)
	}
	if n > 12 {
		return 0, fmt.Errorf("entropy: permutation order %d too large (max 12)", n)
	}
	if len(xs) < n {
		return 0, nil
	}
	if ws.counts == nil {
		ws.counts = make(map[uint64]int)
	}
	clear(ws.counts)
	var idx [12]int
	total := 0
	for start := 0; start+n <= len(xs); start++ {
		win := xs[start : start+n]
		for i := 0; i < n; i++ {
			idx[i] = i
		}
		// Stable insertion sort of the pattern indices by value (ties
		// keep temporal order): identical ordering to sort.SliceStable
		// without its closure and interface costs.
		for i := 1; i < n; i++ {
			for j := i; j > 0 && win[idx[j]] < win[idx[j-1]]; j-- {
				idx[j], idx[j-1] = idx[j-1], idx[j]
			}
		}
		// Encode the permutation as a base-n integer (n <= 12 fits easily).
		var code uint64
		for _, v := range idx[:n] {
			code = code*uint64(n) + uint64(v)
		}
		ws.counts[code]++
		total++
	}
	// Accumulate in a deterministic order: map iteration order is random
	// in Go and would otherwise perturb the last float bits run-to-run.
	ws.cs = ws.cs[:0]
	for _, c := range ws.counts {
		ws.cs = append(ws.cs, c)
	}
	slices.Sort(ws.cs)
	var h float64
	for _, c := range ws.cs {
		p := float64(c) / float64(total)
		h -= p * math.Log(p)
	}
	// Normalize by the maximum attainable entropy log(n!).
	maxH := logFactorial(n)
	if maxH == 0 {
		return 0, nil
	}
	return h / maxH, nil
}

// histogram bins xs into nbins reused workspace bins and returns the
// counts with their total, mirroring stats.Histogram.
func (ws *Workspace) histogram(xs []float64, nbins int) ([]int, int) {
	if cap(ws.hist) < nbins {
		ws.hist = make([]int, nbins)
	}
	ws.hist = ws.hist[:nbins]
	counts := stats.HistogramInto(ws.hist, xs)
	total := 0
	for _, c := range counts {
		total += c
	}
	return counts, total
}

// RenyiSignal is the workspace form of the package-level RenyiSignal.
//
//selflearn:hotpath
func (ws *Workspace) RenyiSignal(xs []float64, alpha float64, nbins int) (float64, error) {
	if len(xs) == 0 {
		return 0, nil
	}
	if nbins <= 0 {
		return 0, fmt.Errorf("entropy: invalid bin count %d", nbins)
	}
	if alpha <= 0 {
		return 0, fmt.Errorf("entropy: Rényi order must be positive, got %g", alpha)
	}
	counts, total := ws.histogram(xs, nbins)
	if total == 0 {
		return 0, nil
	}
	if alpha == 1 {
		return shannonCounts(counts, total), nil
	}
	// Identical accumulation to Renyi(Probabilities(counts), alpha):
	// empty bins are skipped in bin order.
	var s float64
	for _, c := range counts {
		if c > 0 {
			s += math.Pow(float64(c)/float64(total), alpha)
		}
	}
	if s == 0 {
		return 0, nil
	}
	return math.Log(s) / (1 - alpha), nil
}

// ShannonSignal is the workspace form of the package-level ShannonSignal.
func (ws *Workspace) ShannonSignal(xs []float64, nbins int) (float64, error) {
	if len(xs) == 0 {
		return 0, nil
	}
	if nbins <= 0 {
		return 0, fmt.Errorf("entropy: invalid bin count %d", nbins)
	}
	counts, total := ws.histogram(xs, nbins)
	if total == 0 {
		return 0, nil
	}
	return shannonCounts(counts, total), nil
}

func shannonCounts(counts []int, total int) float64 {
	var h float64
	for _, c := range counts {
		if c > 0 {
			p := float64(c) / float64(total)
			h -= p * math.Log(p)
		}
	}
	return h
}

// Sample is the workspace form of the package-level Sample: the sorted
// index scratch is reused across calls.
func (ws *Workspace) Sample(xs []float64, m int, r float64) (float64, error) {
	if m < 1 {
		return 0, fmt.Errorf("entropy: sample entropy m must be >= 1, got %d", m)
	}
	if r < 0 {
		return 0, fmt.Errorf("entropy: sample entropy tolerance must be >= 0, got %g", r)
	}
	if len(xs) < m+2 {
		return 0, nil
	}
	if n := len(xs) - m; cap(ws.order) < n {
		ws.order = make([]int32, n)
	}
	a, b := sampleCounts(xs, m, r, ws.order)
	if a == 0 || b == 0 {
		return 0, nil
	}
	return -math.Log(float64(a) / float64(b)), nil
}

// SampleK is the workspace form of the package-level SampleK.
//
//selflearn:hotpath
func (ws *Workspace) SampleK(xs []float64, m int, k float64) (float64, error) {
	if k < 0 {
		return 0, fmt.Errorf("entropy: sample entropy k must be >= 0, got %g", k)
	}
	if len(xs) == 0 {
		return 0, nil
	}
	return ws.Sample(xs, m, k*stats.StdDev(xs))
}
