package entropy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", what, got, want, tol)
	}
}

func TestShannonUniform(t *testing.T) {
	approx(t, Shannon([]float64{0.25, 0.25, 0.25, 0.25}), math.Log(4), 1e-12, "uniform Shannon")
	approx(t, Shannon([]float64{1}), 0, 1e-12, "deterministic Shannon")
	approx(t, Shannon(nil), 0, 0, "empty Shannon")
	approx(t, Shannon([]float64{0.5, 0, 0.5}), math.Log(2), 1e-12, "Shannon skips zeros")
}

func TestRenyiLimits(t *testing.T) {
	ps := []float64{0.5, 0.25, 0.25}
	// alpha -> 1 recovers Shannon.
	h1, err := Renyi(ps, 1)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, h1, Shannon(ps), 1e-12, "Rényi alpha=1")
	hNear, err := Renyi(ps, 1.0001)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, hNear, Shannon(ps), 1e-3, "Rényi alpha→1 limit")
	// Uniform distribution: all orders give log(n).
	uni := []float64{0.25, 0.25, 0.25, 0.25}
	for _, a := range []float64{0.5, 2, 3} {
		h, err := Renyi(uni, a)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, h, math.Log(4), 1e-12, "uniform Rényi")
	}
}

func TestRenyiOrder2(t *testing.T) {
	ps := []float64{0.5, 0.5}
	h, err := Renyi(ps, 2)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, h, math.Log(2), 1e-12, "collision entropy of fair coin")
}

func TestRenyiErrors(t *testing.T) {
	if _, err := Renyi([]float64{1}, 0); err == nil {
		t.Error("alpha=0 should error")
	}
	if _, err := Renyi([]float64{1}, -2); err == nil {
		t.Error("negative alpha should error")
	}
	h, err := Renyi(nil, 2)
	if err != nil || h != 0 {
		t.Error("empty distribution should give 0")
	}
}

func TestRenyiMonotoneInAlpha(t *testing.T) {
	// Rényi entropy is non-increasing in alpha.
	f := func(a, b, c float64) bool {
		pa, pb, pc := math.Abs(a)+0.01, math.Abs(b)+0.01, math.Abs(c)+0.01
		if math.IsInf(pa+pb+pc, 0) || math.IsNaN(pa+pb+pc) {
			return true
		}
		tot := pa + pb + pc
		ps := []float64{pa / tot, pb / tot, pc / tot}
		h1, err1 := Renyi(ps, 0.5)
		h2, err2 := Renyi(ps, 2)
		if err1 != nil || err2 != nil {
			return false
		}
		return h1 >= h2-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRenyiSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	noisy := make([]float64, 4096)
	for i := range noisy {
		noisy[i] = rng.Float64()
	}
	hNoise, err := RenyiSignal(noisy, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform noise across 16 bins approaches log 16.
	approx(t, hNoise, math.Log(16), 0.1, "uniform-noise Rényi")

	constant := make([]float64, 128)
	hConst, err := RenyiSignal(constant, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, hConst, 0, 1e-12, "constant-signal Rényi")

	if _, err := RenyiSignal(noisy, 2, 0); err == nil {
		t.Error("invalid bins should error")
	}
	h, err := RenyiSignal(nil, 2, 8)
	if err != nil || h != 0 {
		t.Error("empty signal should give 0")
	}
}

func TestShannonSignal(t *testing.T) {
	if _, err := ShannonSignal([]float64{1, 2}, -1); err == nil {
		t.Error("invalid bins should error")
	}
	h, err := ShannonSignal(nil, 8)
	if err != nil || h != 0 {
		t.Error("empty signal should give 0")
	}
}

func TestPermutationMonotoneSequence(t *testing.T) {
	// A strictly increasing sequence has a single ordinal pattern: H = 0.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	for _, n := range []int{3, 5, 7} {
		h, err := Permutation(xs, n)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, h, 0, 1e-12, "monotone permutation entropy")
	}
}

func TestPermutationNoiseNearOne(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	h, err := Permutation(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h < 0.98 || h > 1.0+1e-9 {
		t.Errorf("white-noise permutation entropy = %g, want ≈1", h)
	}
}

func TestPermutationPeriodicBelowNoise(t *testing.T) {
	// A regular oscillation uses fewer ordinal patterns than noise.
	per := make([]float64, 4096)
	for i := range per {
		per[i] = math.Sin(2 * math.Pi * float64(i) / 16)
	}
	hp, err := Permutation(per, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	noise := make([]float64, 4096)
	for i := range noise {
		noise[i] = rng.NormFloat64()
	}
	hn, err := Permutation(noise, 5)
	if err != nil {
		t.Fatal(err)
	}
	if hp >= hn {
		t.Errorf("periodic PE %g should be below noise PE %g", hp, hn)
	}
}

func TestPermutationBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 64)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		for _, n := range []int{3, 5, 7} {
			h, err := Permutation(xs, n)
			if err != nil || h < 0 || h > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPermutationShortAndErrors(t *testing.T) {
	h, err := Permutation([]float64{1, 2}, 5)
	if err != nil || h != 0 {
		t.Error("too-short signal should give 0 without error")
	}
	if _, err := Permutation([]float64{1, 2, 3}, 1); err == nil {
		t.Error("order 1 should error")
	}
	if _, err := Permutation([]float64{1, 2, 3}, 13); err == nil {
		t.Error("order 13 should error")
	}
}

func TestPermutationPaperOrders(t *testing.T) {
	// The paper's configuration uses n=5 and n=7 on short subbands
	// (level-7 detail of a 1024-sample window has 8 coefficients) — the
	// implementation must handle that gracefully.
	xs := []float64{0.3, -1.2, 0.8, 0.1, -0.4, 2.2, -0.9, 0.5}
	for _, n := range []int{5, 7} {
		h, err := Permutation(xs, n)
		if err != nil {
			t.Fatal(err)
		}
		if h < 0 || h > 1 {
			t.Errorf("n=%d entropy %g outside [0,1]", n, h)
		}
	}
}

func TestSampleEntropyRegularVsRandom(t *testing.T) {
	per := make([]float64, 512)
	for i := range per {
		per[i] = math.Sin(2 * math.Pi * float64(i) / 32)
	}
	hPer, err := SampleK(per, 2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	noise := make([]float64, 512)
	for i := range noise {
		noise[i] = rng.NormFloat64()
	}
	hNoise, err := SampleK(noise, 2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if hPer >= hNoise {
		t.Errorf("periodic SampEn %g should be below noise SampEn %g", hPer, hNoise)
	}
}

func TestSampleEntropyToleranceMonotone(t *testing.T) {
	// Larger tolerance -> more matches -> lower entropy (k=0.35 <= k=0.2).
	rng := rand.New(rand.NewSource(13))
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	h02, err := SampleK(xs, 2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	h035, err := SampleK(xs, 2, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	if h035 > h02 {
		t.Errorf("SampEn(k=0.35)=%g should not exceed SampEn(k=0.2)=%g", h035, h02)
	}
}

func TestSampleEntropyDegenerate(t *testing.T) {
	h, err := Sample([]float64{1, 2}, 2, 0.5)
	if err != nil || h != 0 {
		t.Error("too-short input should give 0")
	}
	// Constant signal: everything matches, -log(1) = 0.
	constant := make([]float64, 64)
	h, err = Sample(constant, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, h, 0, 1e-12, "constant SampEn")
	if _, err := Sample([]float64{1, 2, 3}, 0, 0.1); err == nil {
		t.Error("m=0 should error")
	}
	if _, err := Sample([]float64{1, 2, 3}, 2, -1); err == nil {
		t.Error("negative tolerance should error")
	}
	if _, err := SampleK([]float64{1, 2, 3}, 2, -0.1); err == nil {
		t.Error("negative k should error")
	}
	h, err = SampleK(nil, 2, 0.2)
	if err != nil || h != 0 {
		t.Error("empty SampleK should give 0")
	}
}

func TestApproximateEntropy(t *testing.T) {
	per := make([]float64, 256)
	for i := range per {
		per[i] = math.Sin(2 * math.Pi * float64(i) / 16)
	}
	rng := rand.New(rand.NewSource(21))
	noise := make([]float64, 256)
	for i := range noise {
		noise[i] = rng.NormFloat64()
	}
	hPer, err := Approximate(per, 2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	hNoise, err := Approximate(noise, 2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if hPer >= hNoise {
		t.Errorf("periodic ApEn %g should be below noise ApEn %g", hPer, hNoise)
	}
}

func TestApproximateErrors(t *testing.T) {
	if _, err := Approximate([]float64{1, 2, 3}, 0, 0.1); err == nil {
		t.Error("m=0 should error")
	}
	if _, err := Approximate([]float64{1, 2, 3}, 2, -0.5); err == nil {
		t.Error("negative r should error")
	}
	h, err := Approximate([]float64{1}, 2, 0.1)
	if err != nil || h != 0 {
		t.Error("short input should give 0")
	}
}

func TestMultiscaleWhiteNoiseDecreases(t *testing.T) {
	// Coarse-graining averages white noise toward zero variance at a
	// fixed absolute tolerance r, so its SampEn profile falls with
	// scale; that decline is the classic multiscale signature.
	rng := rand.New(rand.NewSource(31))
	xs := make([]float64, 4000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	prof, err := Multiscale(xs, 2, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) != 5 {
		t.Fatalf("profile length %d", len(prof))
	}
	if prof[4] >= prof[0] {
		t.Errorf("white-noise multiscale entropy should fall: scale1 %g vs scale5 %g", prof[0], prof[4])
	}
	for i, h := range prof {
		if h < 0 {
			t.Errorf("scale %d entropy %g negative", i+1, h)
		}
	}
}

func TestMultiscaleErrors(t *testing.T) {
	if _, err := Multiscale([]float64{1, 2, 3}, 2, 0.2, 0); err == nil {
		t.Error("0 scales should fail")
	}
	if _, err := Multiscale([]float64{1, 2, 3}, 0, 0.2, 2); err == nil {
		t.Error("invalid m should propagate")
	}
}

func TestCoarseGrainIdentityAtScale1(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := coarseGrain(xs, 1); &got[0] != &xs[0] {
		t.Error("scale 1 should return the input")
	}
	c2 := coarseGrain(xs, 2)
	if len(c2) != 2 || c2[0] != 1.5 || c2[1] != 3.5 {
		t.Errorf("coarseGrain scale 2 = %v", c2)
	}
}

func TestSampleEntropyNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 120)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		h, err := SampleK(xs, 2, 0.2)
		return err == nil && h >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
