// Package entropy implements the nonlinearity measures the paper extracts
// from DWT subbands: permutation entropy (Bandt–Pompe), Rényi entropy,
// and sample entropy, plus Shannon and approximate entropy for the
// extended feature bank.
package entropy

import (
	"cmp"
	"fmt"
	"math"
	"slices"
)

// Shannon returns the Shannon entropy (nats) of the probability
// distribution ps. Zero-probability entries are ignored; the distribution
// is assumed normalized. Empty input returns 0.
func Shannon(ps []float64) float64 {
	var h float64
	for _, p := range ps {
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h
}

// Renyi returns the Rényi entropy of order alpha (nats) of the
// distribution ps. alpha must be positive and != 1; alpha == 1 falls back
// to Shannon (its limit). Empty input returns 0.
func Renyi(ps []float64, alpha float64) (float64, error) {
	if alpha <= 0 {
		return 0, fmt.Errorf("entropy: Rényi order must be positive, got %g", alpha)
	}
	if alpha == 1 {
		return Shannon(ps), nil
	}
	var s float64
	for _, p := range ps {
		if p > 0 {
			s += math.Pow(p, alpha)
		}
	}
	if s == 0 {
		return 0, nil
	}
	return math.Log(s) / (1 - alpha), nil
}

// RenyiSignal computes the Rényi entropy of order alpha of a signal by
// histogramming it into nbins amplitude bins. This is how the paper's
// "third level Rényi entropy" feature is realised on DWT coefficients.
func RenyiSignal(xs []float64, alpha float64, nbins int) (float64, error) {
	var ws Workspace
	return ws.RenyiSignal(xs, alpha, nbins)
}

// ShannonSignal computes the Shannon entropy of a signal via an nbins
// amplitude histogram.
func ShannonSignal(xs []float64, nbins int) (float64, error) {
	var ws Workspace
	return ws.ShannonSignal(xs, nbins)
}

// Permutation returns the permutation entropy of order n (embedding
// dimension) with unit delay, normalized to [0, 1] by log(n!). It follows
// Bandt and Pompe, "Permutation Entropy: A Natural Complexity Measure for
// Time Series". The paper uses n = 5 and n = 7 on DWT subbands.
//
// Signals shorter than n return 0 (no ordinal patterns exist). Ties are
// broken by temporal order, the standard convention.
func Permutation(xs []float64, n int) (float64, error) {
	var ws Workspace
	return ws.Permutation(xs, n)
}

func logFactorial(n int) float64 {
	var s float64
	for i := 2; i <= n; i++ {
		s += math.Log(float64(i))
	}
	return s
}

// Sample returns the sample entropy SampEn(m, r) of xs following
// Richman–Moorman as used by Chen et al. (paper reference [27]): the
// negative logarithm of the conditional probability that sequences
// matching for m points (Chebyshev distance <= r) also match for m+1
// points. Self-matches are excluded.
//
// r is an absolute tolerance; use SampleK to express it as k·σ as the
// paper does (k = 0.2 and k = 0.35). Degenerate inputs (too short, or no
// matches) return 0.
func Sample(xs []float64, m int, r float64) (float64, error) {
	var ws Workspace
	return ws.Sample(xs, m, r)
}

// sampleCounts returns (A, B): matches of length m+1 and m over template
// pairs i<j. It dispatches to the sorted early-abort path, falling back
// to the O(n²) pairwise scan only when the input contains NaN (whose
// comparison semantics the sorted pruning cannot reproduce). order is
// optional index scratch of length >= n-m.
func sampleCounts(xs []float64, m int, r float64, order []int32) (a, b int) {
	if math.IsNaN(r) {
		return sampleCountsBrute(xs, m, r)
	}
	for _, v := range xs {
		if math.IsNaN(v) {
			return sampleCountsBrute(xs, m, r)
		}
	}
	return sampleCountsSorted(xs, m, r, order)
}

// sampleCountsBrute is the reference pairwise scan: every template pair,
// Chebyshev distance over the m-length templates, then the m+1 extension.
func sampleCountsBrute(xs []float64, m int, r float64) (a, b int) {
	nTempl := len(xs) - m // templates of length m (those of length m+1 number n-m-1)
	for i := 0; i < nTempl-1; i++ {
		for j := i + 1; j < nTempl; j++ {
			match := true
			for k := 0; k < m; k++ {
				if math.Abs(xs[i+k]-xs[j+k]) > r {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			b++
			if math.Abs(xs[i+m]-xs[j+m]) <= r {
				a++
			}
		}
	}
	return a, b
}

// sampleCountsSorted counts the same template pairs as the brute scan
// but enumerates only candidates whose first coordinates are within r:
// template start indices are sorted by value, so for each template the
// inner loop aborts as soon as the sorted first-coordinate gap exceeds
// r. A matching pair agrees in every coordinate — in particular the
// first — so the candidate set provably covers all matches and the
// counts (hence the entropy) are identical to the brute-force path.
// Typical EEG subbands spread their amplitudes well beyond r = k·σ, so
// the quadratic all-pairs scan collapses to near-linear work.
func sampleCountsSorted(xs []float64, m int, r float64, order []int32) (a, b int) {
	nTempl := len(xs) - m
	if cap(order) < nTempl {
		order = make([]int32, nTempl)
	}
	order = order[:nTempl]
	for i := range order {
		order[i] = int32(i)
	}
	slices.SortFunc(order, func(p, q int32) int { //selflearn:alloc-ok non-escaping comparator; stack-allocated, covered by the allocs/op guard
		return cmp.Compare(xs[p], xs[q])
	})
	for oi := 0; oi < nTempl-1; oi++ {
		i := int(order[oi])
		vi := xs[i]
		for oj := oi + 1; oj < nTempl; oj++ {
			j := int(order[oj])
			if xs[j]-vi > r {
				break // every later template is even further in coordinate 0
			}
			match := true
			for k := 1; k < m; k++ {
				if math.Abs(xs[i+k]-xs[j+k]) > r {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			b++
			if math.Abs(xs[i+m]-xs[j+m]) <= r {
				a++
			}
		}
	}
	return a, b
}

// SampleK returns Sample(xs, m, k·σ(xs)), the paper's parameterisation
// ("sixth level sample entropy for k = 0.2 and k = 0.35").
func SampleK(xs []float64, m int, k float64) (float64, error) {
	var ws Workspace
	return ws.SampleK(xs, m, k)
}

// Multiscale returns the multiscale sample entropy of xs: SampEn(m, r)
// computed on coarse-grained versions of the signal at scales 1..scales
// (scale τ averages non-overlapping blocks of τ samples). Complex
// physiological signals keep their entropy across scales; white noise
// loses it — a standard EEG complexity profile (Costa et al.).
func Multiscale(xs []float64, m int, r float64, scales int) ([]float64, error) {
	if scales < 1 {
		return nil, fmt.Errorf("entropy: invalid scale count %d", scales)
	}
	out := make([]float64, scales)
	for tau := 1; tau <= scales; tau++ {
		coarse := coarseGrain(xs, tau)
		h, err := Sample(coarse, m, r)
		if err != nil {
			return nil, err
		}
		out[tau-1] = h
	}
	return out, nil
}

func coarseGrain(xs []float64, tau int) []float64 {
	if tau <= 1 {
		return xs
	}
	n := len(xs) / tau
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < tau; j++ {
			s += xs[i*tau+j]
		}
		out[i] = s / float64(tau)
	}
	return out
}

// Approximate returns the approximate entropy ApEn(m, r) of xs
// (Pincus). Unlike sample entropy it counts self-matches, making it
// biased but defined for all inputs. Degenerate inputs return 0.
func Approximate(xs []float64, m int, r float64) (float64, error) {
	if m < 1 {
		return 0, fmt.Errorf("entropy: approximate entropy m must be >= 1, got %d", m)
	}
	if r < 0 {
		return 0, fmt.Errorf("entropy: approximate entropy tolerance must be >= 0, got %g", r)
	}
	if len(xs) < m+1 {
		return 0, nil
	}
	phi := func(m int) float64 {
		n := len(xs) - m + 1
		var sum float64
		for i := 0; i < n; i++ {
			count := 0
			for j := 0; j < n; j++ {
				match := true
				for k := 0; k < m; k++ {
					if math.Abs(xs[i+k]-xs[j+k]) > r {
						match = false
						break
					}
				}
				if match {
					count++
				}
			}
			sum += math.Log(float64(count) / float64(n))
		}
		return sum / float64(n)
	}
	return phi(m) - phi(m+1), nil
}
