// Package entropy implements the nonlinearity measures the paper extracts
// from DWT subbands: permutation entropy (Bandt–Pompe), Rényi entropy,
// and sample entropy, plus Shannon and approximate entropy for the
// extended feature bank.
package entropy

import (
	"fmt"
	"math"
	"sort"

	"selflearn/internal/stats"
)

// Shannon returns the Shannon entropy (nats) of the probability
// distribution ps. Zero-probability entries are ignored; the distribution
// is assumed normalized. Empty input returns 0.
func Shannon(ps []float64) float64 {
	var h float64
	for _, p := range ps {
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h
}

// Renyi returns the Rényi entropy of order alpha (nats) of the
// distribution ps. alpha must be positive and != 1; alpha == 1 falls back
// to Shannon (its limit). Empty input returns 0.
func Renyi(ps []float64, alpha float64) (float64, error) {
	if alpha <= 0 {
		return 0, fmt.Errorf("entropy: Rényi order must be positive, got %g", alpha)
	}
	if alpha == 1 {
		return Shannon(ps), nil
	}
	var s float64
	for _, p := range ps {
		if p > 0 {
			s += math.Pow(p, alpha)
		}
	}
	if s == 0 {
		return 0, nil
	}
	return math.Log(s) / (1 - alpha), nil
}

// RenyiSignal computes the Rényi entropy of order alpha of a signal by
// histogramming it into nbins amplitude bins. This is how the paper's
// "third level Rényi entropy" feature is realised on DWT coefficients.
func RenyiSignal(xs []float64, alpha float64, nbins int) (float64, error) {
	if len(xs) == 0 {
		return 0, nil
	}
	if nbins <= 0 {
		return 0, fmt.Errorf("entropy: invalid bin count %d", nbins)
	}
	ps := stats.Probabilities(stats.Histogram(xs, nbins))
	return Renyi(ps, alpha)
}

// ShannonSignal computes the Shannon entropy of a signal via an nbins
// amplitude histogram.
func ShannonSignal(xs []float64, nbins int) (float64, error) {
	if len(xs) == 0 {
		return 0, nil
	}
	if nbins <= 0 {
		return 0, fmt.Errorf("entropy: invalid bin count %d", nbins)
	}
	return Shannon(stats.Probabilities(stats.Histogram(xs, nbins))), nil
}

// Permutation returns the permutation entropy of order n (embedding
// dimension) with unit delay, normalized to [0, 1] by log(n!). It follows
// Bandt and Pompe, "Permutation Entropy: A Natural Complexity Measure for
// Time Series". The paper uses n = 5 and n = 7 on DWT subbands.
//
// Signals shorter than n return 0 (no ordinal patterns exist). Ties are
// broken by temporal order, the standard convention.
func Permutation(xs []float64, n int) (float64, error) {
	if n < 2 {
		return 0, fmt.Errorf("entropy: permutation order must be >= 2, got %d", n)
	}
	if n > 12 {
		return 0, fmt.Errorf("entropy: permutation order %d too large (max 12)", n)
	}
	if len(xs) < n {
		return 0, nil
	}
	counts := make(map[uint64]int)
	idx := make([]int, n)
	total := 0
	for start := 0; start+n <= len(xs); start++ {
		win := xs[start : start+n]
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return win[idx[a]] < win[idx[b]] })
		// Encode the permutation as a base-n integer (n <= 12 fits easily).
		var code uint64
		for _, v := range idx {
			code = code*uint64(n) + uint64(v)
		}
		counts[code]++
		total++
	}
	// Accumulate in a deterministic order: map iteration order is random
	// in Go and would otherwise perturb the last float bits run-to-run.
	cs := make([]int, 0, len(counts))
	for _, c := range counts {
		cs = append(cs, c)
	}
	sort.Ints(cs)
	var h float64
	for _, c := range cs {
		p := float64(c) / float64(total)
		h -= p * math.Log(p)
	}
	// Normalize by the maximum attainable entropy log(n!).
	maxH := logFactorial(n)
	if maxH == 0 {
		return 0, nil
	}
	return h / maxH, nil
}

func logFactorial(n int) float64 {
	var s float64
	for i := 2; i <= n; i++ {
		s += math.Log(float64(i))
	}
	return s
}

// Sample returns the sample entropy SampEn(m, r) of xs following
// Richman–Moorman as used by Chen et al. (paper reference [27]): the
// negative logarithm of the conditional probability that sequences
// matching for m points (Chebyshev distance <= r) also match for m+1
// points. Self-matches are excluded.
//
// r is an absolute tolerance; use SampleK to express it as k·σ as the
// paper does (k = 0.2 and k = 0.35). Degenerate inputs (too short, or no
// matches) return 0.
func Sample(xs []float64, m int, r float64) (float64, error) {
	if m < 1 {
		return 0, fmt.Errorf("entropy: sample entropy m must be >= 1, got %d", m)
	}
	if r < 0 {
		return 0, fmt.Errorf("entropy: sample entropy tolerance must be >= 0, got %g", r)
	}
	n := len(xs)
	if n < m+2 {
		return 0, nil
	}
	// B: matches of length m, A: matches of length m+1, over pairs i<j.
	var a, b int
	nTempl := n - m // templates of length m (those of length m+1 number n-m-1)
	for i := 0; i < nTempl-1; i++ {
		for j := i + 1; j < nTempl; j++ {
			// Chebyshev distance over the m-length templates.
			match := true
			for k := 0; k < m; k++ {
				if math.Abs(xs[i+k]-xs[j+k]) > r {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			b++
			if i+m < n && j+m < n && math.Abs(xs[i+m]-xs[j+m]) <= r {
				a++
			}
		}
	}
	if a == 0 || b == 0 {
		return 0, nil
	}
	return -math.Log(float64(a) / float64(b)), nil
}

// SampleK returns Sample(xs, m, k·σ(xs)), the paper's parameterisation
// ("sixth level sample entropy for k = 0.2 and k = 0.35").
func SampleK(xs []float64, m int, k float64) (float64, error) {
	if k < 0 {
		return 0, fmt.Errorf("entropy: sample entropy k must be >= 0, got %g", k)
	}
	if len(xs) == 0 {
		return 0, nil
	}
	return Sample(xs, m, k*stats.StdDev(xs))
}

// Multiscale returns the multiscale sample entropy of xs: SampEn(m, r)
// computed on coarse-grained versions of the signal at scales 1..scales
// (scale τ averages non-overlapping blocks of τ samples). Complex
// physiological signals keep their entropy across scales; white noise
// loses it — a standard EEG complexity profile (Costa et al.).
func Multiscale(xs []float64, m int, r float64, scales int) ([]float64, error) {
	if scales < 1 {
		return nil, fmt.Errorf("entropy: invalid scale count %d", scales)
	}
	out := make([]float64, scales)
	for tau := 1; tau <= scales; tau++ {
		coarse := coarseGrain(xs, tau)
		h, err := Sample(coarse, m, r)
		if err != nil {
			return nil, err
		}
		out[tau-1] = h
	}
	return out, nil
}

func coarseGrain(xs []float64, tau int) []float64 {
	if tau <= 1 {
		return xs
	}
	n := len(xs) / tau
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < tau; j++ {
			s += xs[i*tau+j]
		}
		out[i] = s / float64(tau)
	}
	return out
}

// Approximate returns the approximate entropy ApEn(m, r) of xs
// (Pincus). Unlike sample entropy it counts self-matches, making it
// biased but defined for all inputs. Degenerate inputs return 0.
func Approximate(xs []float64, m int, r float64) (float64, error) {
	if m < 1 {
		return 0, fmt.Errorf("entropy: approximate entropy m must be >= 1, got %d", m)
	}
	if r < 0 {
		return 0, fmt.Errorf("entropy: approximate entropy tolerance must be >= 0, got %g", r)
	}
	if len(xs) < m+1 {
		return 0, nil
	}
	phi := func(m int) float64 {
		n := len(xs) - m + 1
		var sum float64
		for i := 0; i < n; i++ {
			count := 0
			for j := 0; j < n; j++ {
				match := true
				for k := 0; k < m; k++ {
					if math.Abs(xs[i+k]-xs[j+k]) > r {
						match = false
						break
					}
				}
				if match {
					count++
				}
			}
			sum += math.Log(float64(count) / float64(n))
		}
		return sum / float64(n)
	}
	return phi(m) - phi(m+1), nil
}
