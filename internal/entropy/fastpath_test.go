package entropy

import (
	"math"
	"math/rand"
	"testing"

	"selflearn/internal/stats"
)

// bruteSample is an independent reference implementation of the
// Richman–Moorman pairwise counts, kept verbatim from the pre-fast-path
// code so the sorted early-abort path is checked against the original
// O(n²) scan, not against itself.
func bruteSample(xs []float64, m int, r float64) float64 {
	n := len(xs)
	if n < m+2 {
		return 0
	}
	var a, b int
	nTempl := n - m
	for i := 0; i < nTempl-1; i++ {
		for j := i + 1; j < nTempl; j++ {
			match := true
			for k := 0; k < m; k++ {
				if math.Abs(xs[i+k]-xs[j+k]) > r {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			b++
			if i+m < n && j+m < n && math.Abs(xs[i+m]-xs[j+m]) <= r {
				a++
			}
		}
	}
	if a == 0 || b == 0 {
		return 0
	}
	return -math.Log(float64(a) / float64(b))
}

// TestSampleSortedFastPathEquivalence drives the fast path across
// signal shapes and tolerances and demands bit-identical results: the
// sorted enumeration only prunes pairs that cannot match, so the
// integer counts — and hence the entropy — must be exactly equal.
func TestSampleSortedFastPathEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	signals := map[string][]float64{}

	gauss := make([]float64, 400)
	for i := range gauss {
		gauss[i] = rng.NormFloat64()
	}
	signals["gauss"] = gauss

	walk := make([]float64, 300)
	for i := 1; i < len(walk); i++ {
		walk[i] = walk[i-1] + rng.NormFloat64()
	}
	signals["randomwalk"] = walk

	sine := make([]float64, 256)
	for i := range sine {
		sine[i] = math.Sin(float64(i) / 7)
	}
	signals["sine"] = sine

	constant := make([]float64, 64) // every pair matches: worst case
	signals["constant"] = constant

	quantized := make([]float64, 200) // heavy ties
	for i := range quantized {
		quantized[i] = float64(rng.Intn(4))
	}
	signals["quantized"] = quantized

	signals["tiny"] = []float64{1, 2, 3, 4}

	for name, xs := range signals {
		for _, m := range []int{1, 2, 3} {
			for _, k := range []float64{0, 0.1, 0.2, 0.35, 1.5} {
				r := k * stats.StdDev(xs)
				got, err := Sample(xs, m, r)
				if err != nil {
					t.Fatalf("%s m=%d k=%g: %v", name, m, k, err)
				}
				var ws Workspace
				gotWS, err := ws.Sample(xs, m, r)
				if err != nil {
					t.Fatalf("%s m=%d k=%g (workspace): %v", name, m, k, err)
				}
				want := bruteSample(xs, m, r)
				if got != want {
					t.Fatalf("%s m=%d k=%g: fast path %v, brute force %v", name, m, k, got, want)
				}
				if gotWS != want {
					t.Fatalf("%s m=%d k=%g: workspace path %v, brute force %v", name, m, k, gotWS, want)
				}
			}
		}
	}
}

// TestSampleNaNFallback pins the NaN escape hatch: NaN amplitudes defeat
// sort-based pruning, so those inputs take the pairwise scan and must
// still agree with the reference.
func TestSampleNaNFallback(t *testing.T) {
	xs := []float64{1, 2, math.NaN(), 2, 1, 2, 1, 2, 1}
	got, err := Sample(xs, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if want := bruteSample(xs, 2, 0.5); got != want {
		t.Fatalf("NaN input: got %v, want %v", got, want)
	}
}

// TestWorkspaceMatchesPackageFunctions reuses one workspace across many
// different inputs and checks every estimator against its package-level
// form — scratch reuse must never leak state between calls.
func TestWorkspaceMatchesPackageFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var ws Workspace
	for trial := 0; trial < 50; trial++ {
		n := 16 + rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * float64(1+trial%5)
		}
		for _, order := range []int{3, 5, 7} {
			want, err1 := Permutation(xs, order)
			got, err2 := ws.Permutation(xs, order)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if got != want {
				t.Fatalf("trial %d: workspace Permutation(n=%d) %v != %v", trial, order, got, want)
			}
		}
		want, err1 := RenyiSignal(xs, 2, 16)
		got, err2 := ws.RenyiSignal(xs, 2, 16)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if got != want {
			t.Fatalf("trial %d: workspace RenyiSignal %v != %v", trial, got, want)
		}
		want, err1 = ShannonSignal(xs, 16)
		got, err2 = ws.ShannonSignal(xs, 16)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if got != want {
			t.Fatalf("trial %d: workspace ShannonSignal %v != %v", trial, got, want)
		}
		want, err1 = SampleK(xs, 2, 0.2)
		got, err2 = ws.SampleK(xs, 2, 0.2)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if got != want {
			t.Fatalf("trial %d: workspace SampleK %v != %v", trial, got, want)
		}
	}
}

// BenchmarkSample contrasts the sorted early-abort path with the
// pairwise reference on a DWT-subband-sized Gaussian signal.
func BenchmarkSample(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 512)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	r := 0.2 * stats.StdDev(xs)
	b.Run("brute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sampleCountsBrute(xs, 2, r)
		}
	})
	b.Run("sorted", func(b *testing.B) {
		b.ReportAllocs()
		var ws Workspace
		for i := 0; i < b.N; i++ {
			if _, err := ws.Sample(xs, 2, r); err != nil {
				b.Fatal(err)
			}
		}
	})
}
