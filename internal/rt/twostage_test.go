package rt

import (
	"math/rand"
	"testing"

	"selflearn/internal/synth"
)

// alwaysTrue stands in for the expensive stage.
type alwaysTrue struct{}

func (alwaysTrue) Predict([]float64) bool { return true }

func TestNewTwoStageValidation(t *testing.T) {
	if _, err := NewTwoStage(nil, 2, 60); err == nil {
		t.Error("nil classifier should fail")
	}
	if _, err := NewTwoStage(alwaysTrue{}, 1, 60); err == nil {
		t.Error("factor <= 1 should fail")
	}
	if _, err := NewTwoStage(alwaysTrue{}, 2, 4); err == nil {
		t.Error("tiny history should fail")
	}
}

func TestTwoStageGatesBackground(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	fs := 256.0
	n := 600 * int(fs)
	bg := synth.Background(rng, n, fs, synth.DefaultBackground())
	ts, err := NewTwoStage(alwaysTrue{}, 2.5, 120)
	if err != nil {
		t.Fatal(err)
	}
	win := 4 * int(fs)
	hop := int(fs)
	for start := 0; start+win <= n; start += hop {
		ts.Classify(bg[start:start+win], nil)
	}
	// After warm-up, seizure-free EEG should rarely trip the pre-screen.
	if f := ts.InvocationFraction(); f > 0.25 {
		t.Errorf("invocation fraction %g on pure background, want low", f)
	}
}

func TestTwoStageTriggersOnSeizure(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	fs := 256.0
	n := 600 * int(fs)
	data := synth.Background(rng, n, fs, synth.DefaultBackground())
	if err := synth.AddSeizure(rng, data, 300*int(fs), 60*int(fs), fs, synth.DefaultSeizure()); err != nil {
		t.Fatal(err)
	}
	ts, err := NewTwoStage(alwaysTrue{}, 2.5, 120)
	if err != nil {
		t.Fatal(err)
	}
	win := 4 * int(fs)
	hop := int(fs)
	var ictalInvoked, ictalTotal int
	for start := 0; start+win <= n; start += hop {
		sec := start / int(fs)
		_, ran := ts.Classify(data[start:start+win], nil)
		if sec >= 305 && sec < 350 {
			ictalTotal++
			if ran {
				ictalInvoked++
			}
		}
	}
	if ictalTotal == 0 {
		t.Fatal("no ictal windows")
	}
	// The expensive stage must see (nearly) every ictal window: energy
	// savings must not cost sensitivity.
	if float64(ictalInvoked)/float64(ictalTotal) < 0.95 {
		t.Errorf("pre-screen suppressed %d/%d ictal windows", ictalTotal-ictalInvoked, ictalTotal)
	}
	// Overall duty shrinks substantially versus always-on.
	if f := ts.InvocationFraction(); f > 0.4 {
		t.Errorf("overall invocation fraction %g, want well below 1", f)
	}
}

func TestTwoStageColdStartInvokes(t *testing.T) {
	ts, err := NewTwoStage(alwaysTrue{}, 2.5, 60)
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, 1024)
	for i := range w {
		w[i] = float64(i % 7)
	}
	// First windows (no baseline yet) must run stage 2 — cold-start
	// safety.
	for i := 0; i < 10; i++ {
		if _, ran := ts.Classify(w, nil); !ran {
			t.Fatal("cold-start window skipped the classifier")
		}
	}
}

func TestTwoStageReset(t *testing.T) {
	ts, err := NewTwoStage(alwaysTrue{}, 2.5, 60)
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, 256)
	ts.Classify(w, nil)
	ts.Reset()
	if ts.InvocationFraction() != 0 {
		t.Error("reset should clear counters")
	}
}
