package rt

import (
	"testing"
	"time"
)

// thresholdClassifier predicts true when x[0] > 0.5.
type thresholdClassifier struct{}

func (thresholdClassifier) Predict(x []float64) bool { return x[0] > 0.5 }

func fastCfg() Config {
	return Config{VoteWindow: 5, VotesToRaise: 3, Refractory: 30 * time.Second, Hop: time.Second}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.VoteWindow = 0
	if bad.Validate() == nil {
		t.Error("vote window 0 should fail")
	}
	bad = DefaultConfig()
	bad.VotesToRaise = 9
	if bad.Validate() == nil {
		t.Error("k > n should fail")
	}
	bad = DefaultConfig()
	bad.VotesToRaise = 0
	if bad.Validate() == nil {
		t.Error("k = 0 should fail")
	}
	bad = DefaultConfig()
	bad.Refractory = -time.Second
	if bad.Validate() == nil {
		t.Error("negative refractory should fail")
	}
	bad = DefaultConfig()
	bad.Hop = 0
	if bad.Validate() == nil {
		t.Error("zero hop should fail")
	}
}

func TestNewDetectorErrors(t *testing.T) {
	if _, err := NewDetector(nil, fastCfg()); err == nil {
		t.Error("nil classifier should fail")
	}
	bad := fastCfg()
	bad.VoteWindow = 0
	if _, err := NewDetector(thresholdClassifier{}, bad); err == nil {
		t.Error("bad config should fail")
	}
}

func TestSingleNoisyWindowDoesNotAlarm(t *testing.T) {
	d, err := NewDetector(thresholdClassifier{}, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	// One positive window surrounded by negatives: never 3-of-5.
	seq := []float64{0, 0, 1, 0, 0, 0, 0, 0}
	for _, v := range seq {
		if d.Push([]float64{v}) {
			t.Fatal("isolated positive window must not alarm")
		}
	}
	if len(d.Alarms()) != 0 {
		t.Errorf("alarms = %v", d.Alarms())
	}
}

func TestSustainedPositivesAlarmOnce(t *testing.T) {
	d, err := NewDetector(thresholdClassifier{}, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	for i := 0; i < 20; i++ {
		v := 0.0
		if i >= 5 && i < 15 {
			v = 1
		}
		if d.Push([]float64{v}) {
			fired++
		}
	}
	if fired != 1 {
		t.Errorf("sustained event should fire exactly once within refractory, got %d", fired)
	}
	alarms := d.Alarms()
	if len(alarms) != 1 {
		t.Fatalf("alarms = %v", alarms)
	}
	// 3-of-5 satisfied at the 3rd positive window: index 7 -> t = 7 s.
	if alarms[0].Time != 7 {
		t.Errorf("alarm at %g s, want 7 s", alarms[0].Time)
	}
}

func TestRefractorySuppressionAndRecovery(t *testing.T) {
	cfg := fastCfg()
	cfg.Refractory = 10 * time.Second
	d, err := NewDetector(thresholdClassifier{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	// Two bursts 20 s apart: both should alarm with a 10 s refractory.
	for i := 0; i < 40; i++ {
		v := 0.0
		if (i >= 2 && i < 8) || (i >= 28 && i < 34) {
			v = 1
		}
		if d.Push([]float64{v}) {
			fired++
		}
	}
	if fired != 2 {
		t.Errorf("two separated bursts should fire twice, got %d", fired)
	}
}

func TestPushPredictionEquivalent(t *testing.T) {
	a, _ := NewDetector(thresholdClassifier{}, fastCfg())
	b, _ := NewDetector(thresholdClassifier{}, fastCfg())
	seq := []float64{0, 1, 1, 1, 1, 0, 0, 1}
	for _, v := range seq {
		ra := a.Push([]float64{v})
		rb := b.PushPrediction(v > 0.5)
		if ra != rb {
			t.Fatal("Push and PushPrediction must agree")
		}
	}
}

func TestReset(t *testing.T) {
	d, _ := NewDetector(thresholdClassifier{}, fastCfg())
	for i := 0; i < 10; i++ {
		d.Push([]float64{1})
	}
	if len(d.Alarms()) == 0 {
		t.Fatal("expected an alarm before reset")
	}
	d.Reset()
	if len(d.Alarms()) != 0 {
		t.Error("reset should clear alarms")
	}
	// After reset the voter must again need 3 positives.
	if d.PushPrediction(true) || d.PushPrediction(true) {
		t.Error("alarm too early after reset")
	}
	if !d.PushPrediction(true) {
		t.Error("3rd positive after reset should alarm")
	}
}

func TestLatency(t *testing.T) {
	alarms := []Alarm{{Time: 100}, {Time: 200}}
	if got := Latency(alarms, 95); got != 5 {
		t.Errorf("latency = %g, want 5", got)
	}
	if got := Latency(alarms, 150); got != 50 {
		t.Errorf("latency = %g, want 50", got)
	}
	if got := Latency(alarms, 300); got != -1 {
		t.Errorf("latency past all alarms = %g, want -1", got)
	}
	if got := Latency(nil, 10); got != -1 {
		t.Errorf("no alarms should give -1")
	}
}

func TestScoreEvents(t *testing.T) {
	alarms := []Alarm{{Time: 105}, {Time: 400}, {Time: 700}}
	events := [][2]float64{{100, 160}, {390, 450}, {900, 960}}
	m := ScoreEvents(alarms, events, 0)
	if m.Events != 3 || m.Detected != 2 || m.FalseAlarms != 1 {
		t.Errorf("metrics = %+v", m)
	}
	// With tolerance the 700 s alarm still matches nothing; the missed
	// event at 900 stays missed.
	m = ScoreEvents(alarms, events, 100)
	if m.Detected != 2 {
		t.Errorf("tolerant detected = %d", m.Detected)
	}
	// One alarm cannot count for two events.
	m = ScoreEvents([]Alarm{{Time: 100}}, [][2]float64{{90, 110}, {95, 120}}, 0)
	if m.Detected != 1 {
		t.Errorf("one alarm matched %d events", m.Detected)
	}
}
