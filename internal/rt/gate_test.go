package rt

import (
	"math/rand"
	"testing"

	"selflearn/internal/stats"
	"selflearn/internal/synth"
)

// refTwoStage is the pre-optimization TwoStage gating rule, kept
// verbatim as the equivalence oracle: append-and-reslice history with a
// copy-and-sort stats.Median per window. The incremental medianRing
// must reproduce its trigger decisions bit for bit.
type refTwoStage struct {
	factor  float64
	history []float64
	maxHist int
}

func (t *refTwoStage) classify(ll float64) (trigger bool) {
	trigger = true
	if len(t.history) >= t.maxHist/2 {
		baseline := stats.Median(t.history)
		trigger = ll >= t.factor*baseline
	}
	if !trigger || len(t.history) < t.maxHist/2 {
		t.history = append(t.history, ll)
		if len(t.history) > t.maxHist {
			t.history = t.history[1:]
		}
	}
	return trigger
}

// TestMedianRingMatchesStatsMedian: the incremental median must be
// bit-identical to stats.Median over the ring's contents at every step,
// including duplicate values, evictions, and both parities of fill.
func TestMedianRingMatchesStatsMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const capacity = 17
	m := newMedianRing(capacity)
	var window []float64
	for i := 0; i < 2000; i++ {
		// Coarse quantization forces duplicate values into the ring.
		x := float64(rng.Intn(40)) / 8
		m.Push(x)
		window = append(window, x)
		if len(window) > capacity {
			window = window[1:]
		}
		want := stats.Median(window)
		if got := m.Median(); got != want {
			t.Fatalf("step %d: incremental median %v, stats.Median %v", i, got, want)
		}
		if m.Len() != len(window) {
			t.Fatalf("step %d: Len %d, want %d", i, m.Len(), len(window))
		}
	}
}

// TestTwoStageEquivalence: the allocation-free Classify must make the
// exact same trigger decisions as the historical copy-and-sort
// implementation over realistic EEG with seizures.
func TestTwoStageEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	fs := 256.0
	n := 900 * int(fs)
	data := synth.Background(rng, n, fs, synth.DefaultBackground())
	if err := synth.AddSeizure(rng, data, 300*int(fs), 40*int(fs), fs, synth.DefaultSeizure()); err != nil {
		t.Fatal(err)
	}
	if err := synth.AddSeizure(rng, data, 600*int(fs), 25*int(fs), fs, synth.DefaultSeizure()); err != nil {
		t.Fatal(err)
	}
	ts, err := NewTwoStage(alwaysTrue{}, 2.5, 120)
	if err != nil {
		t.Fatal(err)
	}
	ref := &refTwoStage{factor: 2.5, maxHist: 120}
	win, hop := 4*int(fs), int(fs)
	invoked := 0
	for start := 0; start+win <= n; start += hop {
		w := data[start : start+win]
		_, ran := ts.Classify(w, nil)
		wantRan := ref.classify(meanAbs(w))
		if ran != wantRan {
			t.Fatalf("window at %ds: optimized trigger %v, reference %v", start/int(fs), ran, wantRan)
		}
		if ran {
			invoked++
		}
	}
	if invoked == 0 {
		t.Fatal("gate never triggered — equivalence vacuous")
	}
}

// TestAmplitudeGateMatchesTwoStage: the standalone gate must reproduce
// TwoStage's trigger sequence exactly when fed the same amplitudes —
// the property the shard-side audit mirror depends on.
func TestAmplitudeGateMatchesTwoStage(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	fs := 128.0
	n := 600 * int(fs)
	data := synth.Background(rng, n, fs, synth.DefaultBackground())
	if err := synth.AddSeizure(rng, data, 200*int(fs), 30*int(fs), fs, synth.DefaultSeizure()); err != nil {
		t.Fatal(err)
	}
	ts, err := NewTwoStage(alwaysTrue{}, 2.5, 64)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewAmplitudeGate(GateConfig{Factor: 2.5, HistoryWindows: 64})
	if err != nil {
		t.Fatal(err)
	}
	win, hop := 4*int(fs), int(fs)
	for start := 0; start+win <= n; start += hop {
		w := data[start : start+win]
		_, ran := ts.Classify(w, nil)
		if ship := g.Admit(meanAbs(w)); ship != ran {
			t.Fatalf("window at %ds: gate %v, TwoStage %v", start/int(fs), ship, ran)
		}
	}
	if g.Shipped() == g.Windows() {
		t.Fatal("gate never suppressed — test signal too hot")
	}
	if got := float64(g.Shipped()) / float64(g.Windows()); got > 0.4 {
		t.Fatalf("uplink duty cycle %v, want well below 1", got)
	}
}

// TestGateValidation pins the config contract shared with NewTwoStage.
func TestGateValidation(t *testing.T) {
	if _, err := NewAmplitudeGate(GateConfig{Factor: 1, HistoryWindows: 64}); err == nil {
		t.Error("factor <= 1 should fail")
	}
	if _, err := NewAmplitudeGate(GateConfig{Factor: 2.5, HistoryWindows: 4}); err == nil {
		t.Error("tiny history should fail")
	}
}

// TestTwoStageClassifyZeroAlloc: the per-window path — pre-screen,
// baseline maintenance, and gate bookkeeping — must not allocate, or a
// day of 1 Hz windows churns 86k garbage objects per patient.
func TestTwoStageClassifyZeroAlloc(t *testing.T) {
	ts, err := NewTwoStage(alwaysTrue{}, 2.5, 120)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	fs := 256.0
	data := synth.Background(rng, 300*int(fs), fs, synth.DefaultBackground())
	win, hop := 4*int(fs), int(fs)
	starts := make([]int, 0, 256)
	for start := 0; start+win <= len(data); start += hop {
		starts = append(starts, start)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		s := starts[i%len(starts)]
		ts.Classify(data[s:s+win], nil)
		i++
	})
	if allocs != 0 {
		t.Fatalf("TwoStage.Classify allocates %v objects per window, want 0", allocs)
	}

	g, err := NewAmplitudeGate(GateConfig{Factor: 2.5, HistoryWindows: 64})
	if err != nil {
		t.Fatal(err)
	}
	i = 0
	allocs = testing.AllocsPerRun(200, func() {
		s := starts[i%len(starts)]
		g.Admit(BatchAmplitude(data[s:s+hop], data[s:s+hop]))
		i++
	})
	if allocs != 0 {
		t.Fatalf("AmplitudeGate.Admit allocates %v objects per window, want 0", allocs)
	}
}
