package rt

import "fmt"

// This file holds the amplitude gate of the two-stage scheme as a
// free-standing, allocation-free component, so the exact same stage-1
// decision procedure can run in three places: inside TwoStage (the
// in-process duty-cycle reducer of the paper's reference [24]), "on
// device" in a serving client that suppresses uplink traffic
// (serve.PrefilterClient), and mirrored on the shard that audits the
// client's suppression. Keeping one implementation is what makes the
// audit meaningful — the shard re-evaluates the declared gate, not an
// approximation of it.

// GateConfig is the serializable parameterization of the amplitude
// gate — what a stream declares to its shard so the shard can mirror
// the stage-1 decision.
type GateConfig struct {
	// Factor is the trigger multiple over the running median window
	// amplitude (2–3 is typical: ictal amplitude is several times
	// interictal).
	Factor float64 `json:"factor"`
	// HistoryWindows bounds the adaptive-baseline history. The gate is
	// cold (always triggers) until half of it has filled.
	HistoryWindows int `json:"history_windows"`
}

// Validate checks the gate parameters.
func (c GateConfig) Validate() error {
	if c.Factor <= 1 {
		return fmt.Errorf("rt: trigger factor %g must exceed 1", c.Factor)
	}
	if c.HistoryWindows < 8 {
		return fmt.Errorf("rt: history of %d windows too short", c.HistoryWindows)
	}
	return nil
}

// medianRing is a fixed-capacity FIFO of float64 samples that maintains
// its contents in sorted order incrementally, so the running median
// costs one binary search and one memmove per push instead of the
// copy-and-sort of stats.Median — and, critically for the hot path,
// zero allocations after construction. Median is bit-identical to
// stats.Median over the same contents: linear interpolation between the
// two central order statistics with frac = 0.5 exactly.
type medianRing struct {
	ring   []float64 // insertion-order ring, oldest at pos when full
	sorted []float64 // same values, ascending
	pos    int       // next ring slot to overwrite
	n      int       // current fill, ≤ cap
}

func newMedianRing(capacity int) *medianRing {
	return &medianRing{
		ring:   make([]float64, capacity),
		sorted: make([]float64, 0, capacity),
	}
}

// search returns the first index in sorted whose value is >= x — the
// insertion point keeping sorted ascending. Hand-rolled (rather than
// sort.SearchFloat64s) to stay closure-free on the hot path.
func (m *medianRing) search(x float64) int {
	lo, hi := 0, len(m.sorted)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if m.sorted[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Push appends x, evicting the oldest value once the ring is full.
//
//selflearn:hotpath
func (m *medianRing) Push(x float64) {
	if m.n == len(m.ring) {
		// Evict the oldest value from the sorted view. Duplicates are
		// interchangeable, so removing the first occurrence is exact.
		old := m.ring[m.pos]
		i := m.search(old)
		copy(m.sorted[i:], m.sorted[i+1:])
		m.sorted = m.sorted[:m.n-1]
		m.n--
	}
	i := m.search(x)
	m.sorted = m.sorted[:m.n+1]
	copy(m.sorted[i+1:], m.sorted[i:m.n])
	m.sorted[i] = x
	m.ring[m.pos] = x
	m.pos++
	if m.pos == len(m.ring) {
		m.pos = 0
	}
	m.n++
}

// Len returns the current number of held samples.
func (m *medianRing) Len() int { return m.n }

// Median returns the running median, bit-identical to
// stats.Median(contents): the middle order statistic for odd fill, and
// s[lo]*0.5 + s[hi]*0.5 (linear interpolation with frac exactly 0.5)
// for even fill. Zero fill returns 0 — callers gate on Len first.
//
//selflearn:hotpath
func (m *medianRing) Median() float64 {
	if m.n == 0 {
		return 0
	}
	if m.n%2 == 1 {
		return m.sorted[m.n/2]
	}
	lo := m.n/2 - 1
	return m.sorted[lo]*0.5 + m.sorted[lo+1]*0.5
}

// Reset discards all samples without releasing storage.
func (m *medianRing) Reset() {
	m.sorted = m.sorted[:0]
	m.pos, m.n = 0, 0
}

// AmplitudeGate is the stage-1 amplitude pre-screen as a standalone
// decision procedure over per-window mean absolute amplitudes. Admit
// implements exactly the TwoStage gating rule: trigger (ship the
// window) while the baseline is cold or when the amplitude reaches
// Factor times the running median of recent non-triggering windows;
// only non-triggering windows feed the baseline, so a long seizure
// does not drag the threshold up after itself.
type AmplitudeGate struct {
	cfg     GateConfig
	history *medianRing
	windows uint64
	shipped uint64
}

// NewAmplitudeGate builds a gate from cfg. All state is preallocated:
// the per-window path never allocates.
func NewAmplitudeGate(cfg GateConfig) (*AmplitudeGate, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &AmplitudeGate{cfg: cfg, history: newMedianRing(cfg.HistoryWindows)}, nil
}

// Config returns the gate's parameterization.
func (g *AmplitudeGate) Config() GateConfig { return g.cfg }

// Threshold returns the current trigger level (Factor × running median)
// and whether the baseline is warm enough to gate at all. While cold,
// every window triggers (cold-start safety: never miss a seizure to
// save uplink), mirroring TwoStage.
func (g *AmplitudeGate) Threshold() (float64, bool) {
	if g.history.Len() < g.cfg.HistoryWindows/2 {
		return 0, false
	}
	return g.cfg.Factor * g.history.Median(), true
}

// Admit processes one window's mean absolute amplitude and reports
// whether the window must ship upstream (trigger). Baseline bookkeeping
// is identical to TwoStage.Classify's.
//
//selflearn:hotpath
func (g *AmplitudeGate) Admit(amp float64) bool {
	g.windows++
	cold := g.history.Len() < g.cfg.HistoryWindows/2
	trigger := true
	if !cold {
		trigger = amp >= g.cfg.Factor*g.history.Median()
	}
	if !trigger || cold {
		g.history.Push(amp)
	}
	if trigger {
		g.shipped++
	}
	return trigger
}

// Windows returns the number of windows seen and Shipped the number
// that triggered — Shipped/Windows is the uplink duty cycle.
func (g *AmplitudeGate) Windows() uint64 { return g.windows }

// Shipped returns the number of windows that triggered.
func (g *AmplitudeGate) Shipped() uint64 { return g.shipped }

// Reset clears the adaptive state and counters.
func (g *AmplitudeGate) Reset() {
	g.history.Reset()
	g.windows, g.shipped = 0, 0
}

// BatchAmplitude is the mean absolute amplitude over a two-channel
// sample batch — the per-second statistic the client-side gate runs on.
// Empty input returns 0.
//
//selflearn:hotpath
func BatchAmplitude(c0, c1 []float64) float64 {
	n := len(c0) + len(c1)
	if n == 0 {
		return 0
	}
	var s float64
	for _, v := range c0 {
		if v < 0 {
			v = -v
		}
		s += v
	}
	for _, v := range c1 {
		if v < 0 {
			v = -v
		}
		s += v
	}
	return s / float64(n)
}
