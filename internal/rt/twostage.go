package rt

import "fmt"

// TwoStage implements the self-aware detection scheme of the paper's
// reference [24] (Forooghifar, Aminifar, Atienza): a nearly-free
// time-domain pre-screen (windowed mean absolute amplitude — one add per
// sample, no multiplies) gates the expensive random-forest stage,
// cutting the detector's CPU duty cycle — and therefore the dominant
// term of the Fig. 5 energy budget — during the overwhelmingly
// seizure-free hours. Ictal discharges run several times the interictal
// amplitude, so the gate is triggered by exactly the windows the
// classifier must see.
//
// The adaptive baseline is a running median over recent interictal
// amplitudes, maintained incrementally (gate.go's medianRing) instead
// of re-sorting the history per window: Classify is allocation-free and
// O(log h + h move) per window, with a median bit-identical to
// stats.Median over the same history.
type TwoStage struct {
	clf Classifier
	// threshold on the window mean absolute amplitude, in multiples of
	// the running background median.
	factor float64
	// history of recent amplitudes for the adaptive baseline.
	history *medianRing
	maxHist int
	// counters for the invocation statistics.
	windows, invoked int
}

// NewTwoStage wraps a window classifier with an amplitude pre-screen.
// factor is the trigger multiple over the running median window
// amplitude (2–3 is typical: ictal amplitude is several times
// interictal).
func NewTwoStage(clf Classifier, factor float64, historyWindows int) (*TwoStage, error) {
	if clf == nil {
		return nil, fmt.Errorf("rt: nil classifier")
	}
	if err := (GateConfig{Factor: factor, HistoryWindows: historyWindows}).Validate(); err != nil {
		return nil, err
	}
	return &TwoStage{clf: clf, factor: factor, maxHist: historyWindows, history: newMedianRing(historyWindows)}, nil
}

// meanAbs is the mean absolute amplitude of the raw window.
//
//selflearn:hotpath
func meanAbs(w []float64) float64 {
	if len(w) == 0 {
		return 0
	}
	var s float64
	for _, v := range w {
		if v < 0 {
			v = -v
		}
		s += v
	}
	return s / float64(len(w))
}

// Classify processes one analysis window: rawWindow is the time-domain
// signal the pre-screen sees (one channel suffices), featureRow the
// feature vector for the expensive stage. It returns the prediction and
// whether the expensive stage actually ran.
//
//selflearn:hotpath
func (t *TwoStage) Classify(rawWindow []float64, featureRow []float64) (pred, ranStage2 bool) {
	ll := meanAbs(rawWindow)
	t.windows++
	// Build the baseline before gating; with insufficient history the
	// expensive stage always runs (cold-start safety: never miss a
	// seizure to save energy).
	trigger := true
	if t.history.Len() >= t.maxHist/2 {
		trigger = ll >= t.factor*t.history.Median()
	}
	// Only interictal-looking windows feed the baseline, so a long
	// seizure does not drag the threshold up after itself.
	if !trigger || t.history.Len() < t.maxHist/2 {
		t.history.Push(ll)
	}
	if !trigger {
		return false, false
	}
	t.invoked++
	return t.clf.Predict(featureRow), true
}

// InvocationFraction returns the fraction of windows that reached the
// expensive stage — the factor by which the detector's 75 % duty cycle
// (and hence its 85.7 % energy share) shrinks.
func (t *TwoStage) InvocationFraction() float64 {
	if t.windows == 0 {
		return 0
	}
	return float64(t.invoked) / float64(t.windows)
}

// Reset clears the adaptive state and counters.
func (t *TwoStage) Reset() {
	t.history.Reset()
	t.windows, t.invoked = 0, 0
}
