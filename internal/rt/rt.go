// Package rt provides the real-time alarm layer that sits on top of the
// per-window classifier on the wearable: streaming prediction smoothing,
// alarm debouncing (k-of-n voting) and refractory hold-off, so a single
// noisy window neither raises nor suppresses a caregiver alert. This is
// the postprocessing stage real-time detectors such as e-Glass apply
// before notifying family and caregivers.
package rt

import (
	"fmt"
	"time"
)

// Classifier is the minimal window-classifier interface the alarm layer
// consumes; internal/ml/forest.Forest satisfies it.
type Classifier interface {
	Predict(x []float64) bool
}

// Config controls alarm smoothing.
type Config struct {
	// VoteWindow is the number of most recent windows considered (n in
	// k-of-n voting).
	VoteWindow int
	// VotesToRaise is the number of positive windows within VoteWindow
	// required to raise an alarm (k).
	VotesToRaise int
	// Refractory is the hold-off after an alarm during which no new
	// alarm is raised (seizures are single events; repeated alerts for
	// one seizure help nobody).
	Refractory time.Duration
	// Hop is the time between consecutive windows (1 s in the paper's
	// configuration).
	Hop time.Duration
}

// DefaultConfig returns a 3-of-5 voter with a two-minute refractory
// period at the paper's 1 s hop.
func DefaultConfig() Config {
	return Config{VoteWindow: 5, VotesToRaise: 3, Refractory: 2 * time.Minute, Hop: time.Second}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.VoteWindow < 1 {
		return fmt.Errorf("rt: vote window %d < 1", c.VoteWindow)
	}
	if c.VotesToRaise < 1 || c.VotesToRaise > c.VoteWindow {
		return fmt.Errorf("rt: votes-to-raise %d outside [1, %d]", c.VotesToRaise, c.VoteWindow)
	}
	if c.Refractory < 0 {
		return fmt.Errorf("rt: negative refractory %v", c.Refractory)
	}
	if c.Hop <= 0 {
		return fmt.Errorf("rt: non-positive hop %v", c.Hop)
	}
	return nil
}

// Alarm is one raised alert.
type Alarm struct {
	// Time is the stream time in seconds at which the alarm fired.
	Time float64
}

// Detector is a streaming alarm generator.
type Detector struct {
	cfg        Config
	clf        Classifier
	ring       []bool
	pos        int
	votes      int
	filled     int
	windowIdx  int
	lastAlarm  float64
	hasAlarmed bool
	alarms     []Alarm
}

// NewDetector wraps a window classifier in the alarm layer.
func NewDetector(clf Classifier, cfg Config) (*Detector, error) {
	if clf == nil {
		return nil, fmt.Errorf("rt: nil classifier")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg, clf: clf, ring: make([]bool, cfg.VoteWindow)}, nil
}

// Push feeds the feature vector of the next window and returns whether an
// alarm fired on this window.
func (d *Detector) Push(x []float64) bool {
	return d.PushPrediction(d.clf.Predict(x))
}

// PushPrediction feeds an already-computed window prediction (useful when
// predictions come from PredictBatch).
//
//selflearn:hotpath
func (d *Detector) PushPrediction(pred bool) bool {
	// Update ring and running vote count.
	if d.filled == len(d.ring) {
		if d.ring[d.pos] {
			d.votes--
		}
	} else {
		d.filled++
	}
	d.ring[d.pos] = pred
	if pred {
		d.votes++
	}
	d.pos = (d.pos + 1) % len(d.ring)

	now := float64(d.windowIdx) * d.cfg.Hop.Seconds()
	d.windowIdx++

	if d.votes < d.cfg.VotesToRaise {
		return false
	}
	if d.hasAlarmed && now-d.lastAlarm < d.cfg.Refractory.Seconds() {
		return false
	}
	d.lastAlarm = now
	d.hasAlarmed = true
	d.alarms = append(d.alarms, Alarm{Time: now})
	return true
}

// Alarms returns all alarms raised so far.
func (d *Detector) Alarms() []Alarm { return append([]Alarm(nil), d.alarms...) }

// LastAlarmTime returns the stream time in seconds of the most recent
// alarm. It is only meaningful immediately after Push/PushPrediction
// returned true; callers that need the full log use Alarms.
//
//selflearn:hotpath
func (d *Detector) LastAlarmTime() float64 { return d.lastAlarm }

// Reset clears the stream state (ring, refractory, alarm log).
func (d *Detector) Reset() {
	for i := range d.ring {
		d.ring[i] = false
	}
	d.pos, d.votes, d.filled, d.windowIdx = 0, 0, 0, 0
	d.hasAlarmed = false
	d.alarms = nil
}

// Latency returns the detection latency in seconds of the first alarm
// relative to a true onset time, or -1 when no alarm fired at or after
// the onset.
func Latency(alarms []Alarm, onset float64) float64 {
	for _, a := range alarms {
		if a.Time >= onset {
			return a.Time - onset
		}
	}
	return -1
}

// EventMetrics summarises event-level detection over a recording: how
// many annotated seizure events were caught (an alarm within the event
// or within tolerance after onset), and how many alarms were false.
type EventMetrics struct {
	Events      int
	Detected    int
	FalseAlarms int
}

// ScoreEvents computes event-level metrics. events holds (start, end)
// pairs in seconds; tolerance extends each event for alarm matching.
func ScoreEvents(alarms []Alarm, events [][2]float64, tolerance float64) EventMetrics {
	m := EventMetrics{Events: len(events)}
	used := make([]bool, len(alarms))
	for _, ev := range events {
		for i, a := range alarms {
			if used[i] {
				continue
			}
			if a.Time >= ev[0]-tolerance && a.Time <= ev[1]+tolerance {
				m.Detected++
				used[i] = true
				break
			}
		}
	}
	for i := range alarms {
		if !used[i] {
			m.FalseAlarms++
		}
	}
	return m
}
