package cluster

import (
	"encoding/binary"
	"math"
	"net"
	"testing"
	"time"

	"selflearn/internal/rt"
	"selflearn/internal/serve"
	"selflearn/internal/wire"
)

// helloFrame hand-crafts a Hello advertising an arbitrary version —
// wire.Encoder always advertises its own build's Version, so acting as
// an old peer needs raw bytes.
func helloFrame(v uint32) []byte {
	b := make([]byte, 9)
	binary.LittleEndian.PutUint32(b, 5)
	b[4] = byte(wire.KindHello)
	binary.LittleEndian.PutUint32(b[5:], v)
	return b
}

// adcSamples builds a batch on a uint16 grid (integer ADC counts × a
// power-of-two LSB) — data a v4 encoder would frame as PushQ.
func adcSamples(n int, seed uint64) []float64 {
	xs := make([]float64, n)
	state := seed
	for i := range xs {
		state = state*6364136223846793005 + 1442695040888963407
		xs[i] = float64((state>>33)%4096) * (1.0 / (1 << 13))
	}
	return xs
}

// TestV3ClientAgainstV4Shard: a peer still speaking protocol v3 must
// handshake with a current shard and stream float Push frames through
// it — the v4 bump is additive and cannot strand deployed routers.
func TestV3ClientAgainstV4Shard(t *testing.T) {
	ts := startShard(t, "127.0.0.1:0")
	defer ts.stop()

	conn, err := net.Dial("tcp", ts.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(helloFrame(3)); err != nil {
		t.Fatal(err)
	}
	dec := wire.NewDecoder(conn)
	dec.SetVersion(3) // a real v3 peer reads the v3 stats layout
	m, err := dec.Next()
	if err != nil {
		t.Fatalf("shard hung up on a v3 hello: %v", err)
	}
	if m.Kind != wire.KindHello || m.Version != wire.Version {
		t.Fatalf("shard hello = %+v, want v%d", m, wire.Version)
	}

	enc := wire.NewEncoder(conn)
	enc.SetVersion(3) // what a real v3 peer's encoder would produce
	rec := testRecording(t, 77, 12, -1, 0)
	for off := 0; off+testRate <= len(rec.Data[0]); off += testRate {
		if err := enc.Push("v3-patient", rec.Data[0][off:off+testRate], rec.Data[1][off:off+testRate]); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}

	// The shard must classify those batches: poll its stats over the
	// same v3 connection until windows appear.
	deadline := time.Now().Add(30 * time.Second)
	for token := uint64(1); ; token++ {
		if err := enc.StatsReq(token); err != nil {
			t.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		var st serve.Stats
		for {
			m, err := dec.Next()
			if err != nil {
				t.Fatalf("reading stats reply: %v", err)
			}
			if m.Kind == wire.KindStats && m.Token == token {
				st = m.Stats
				break
			}
		}
		if st.Windows > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no windows classified over the v3 connection: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestAncientPeerRefused: versions below wire.MinVersion must be turned
// away at the handshake, not trickle garbage into the frame loop.
func TestAncientPeerRefused(t *testing.T) {
	ts := startShard(t, "127.0.0.1:0")
	defer ts.stop()
	conn, err := net.Dial("tcp", ts.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(helloFrame(wire.MinVersion - 1)); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := wire.NewDecoder(conn).Next(); err == nil {
		t.Fatal("shard answered a v2 hello instead of closing")
	}
}

// TestRouterSpeaksFloatToV3Shard: a router facing a v3 shard must
// negotiate down and send float Push frames even for batches that
// would quantize — and the samples must arrive bit-identical.
func TestRouterSpeaksFloatToV3Shard(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	c0, c1 := adcSamples(testRate, 11), adcSamples(testRate, 12)
	const wantBatches = 5
	got := make(chan wire.Msg, wantBatches)
	errs := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			errs <- err
			return
		}
		defer conn.Close()
		dec := wire.NewDecoder(conn)
		m, err := dec.Next()
		if err != nil || m.Kind != wire.KindHello {
			errs <- err
			return
		}
		if _, err := conn.Write(helloFrame(3)); err != nil { // we are a v3 shard
			errs <- err
			return
		}
		enc := wire.NewEncoder(conn)
		enc.SetVersion(3)
		for {
			m, err := dec.Next()
			if err != nil {
				return
			}
			switch m.Kind {
			case wire.KindPing:
				enc.Pong(m.Token)
				enc.Flush()
			case wire.KindPush:
				select {
				case got <- m:
				default:
				}
			case wire.KindPushQ:
				errs <- err // signal below via closed channel semantics
				close(got)
				return
			}
		}
	}()

	r, err := Dial([]string{ln.Addr().String()}, Options{
		DialTimeout:  5 * time.Second,
		PingInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	h, err := r.Open("grid-patient")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	for i := 0; i < wantBatches; i++ {
		pushSamples(t, h, c0, c1)
	}

	deadline := time.After(30 * time.Second)
	for seen := 0; seen < wantBatches; {
		select {
		case err := <-errs:
			t.Fatalf("fake v3 shard failed (nil error means a PushQ frame arrived): %v", err)
		case m, ok := <-got:
			if !ok {
				t.Fatal("router sent a v4 PushQ frame to a v3 shard")
			}
			if len(m.C0) != len(c0) {
				t.Fatalf("push has %d samples, want %d", len(m.C0), len(c0))
			}
			for i := range c0 {
				if math.Float64bits(m.C0[i]) != math.Float64bits(c0[i]) ||
					math.Float64bits(m.C1[i]) != math.Float64bits(c1[i]) {
					t.Fatalf("sample %d corrupted crossing to the v3 shard", i)
				}
			}
			seen++
		case <-deadline:
			t.Fatalf("fake v3 shard never received the batches")
		}
	}
}

// TestClusterServesQuantizedBatches: two current peers exchanging
// ADC-grid data (which rides PushQ frames) must classify windows
// exactly as ever — the wire format is invisible to the pipeline.
func TestClusterServesQuantizedBatches(t *testing.T) {
	ts := startShard(t, "127.0.0.1:0")
	defer ts.stop()
	r, err := Dial([]string{ts.addr()}, Options{DialTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	h, err := r.Open("grid-patient")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	c0, c1 := adcSamples(12*testRate, 21), adcSamples(12*testRate, 22)
	pushSamples(t, h, c0, c1)
	awaitSnapshot(t, clusterBackend{r}, "windows from quantized batches", func(st serve.Stats) bool {
		return st.Windows > 0
	})
}

// TestV4ClientAgainstV5Shard: a peer still speaking protocol v4 must
// handshake with a current shard, stream batches through it, and read
// stats in the v4 layout — and the shard must never send it a v5
// prefilter frame. The v5 bump is additive like v4's.
func TestV4ClientAgainstV5Shard(t *testing.T) {
	ts := startShard(t, "127.0.0.1:0")
	defer ts.stop()

	conn, err := net.Dial("tcp", ts.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(helloFrame(4)); err != nil {
		t.Fatal(err)
	}
	dec := wire.NewDecoder(conn)
	dec.SetVersion(4) // a real v4 peer reads the v4 stats layout
	m, err := dec.Next()
	if err != nil {
		t.Fatalf("shard hung up on a v4 hello: %v", err)
	}
	if m.Kind != wire.KindHello || m.Version != wire.Version {
		t.Fatalf("shard hello = %+v, want v%d", m, wire.Version)
	}

	enc := wire.NewEncoder(conn)
	enc.SetVersion(4) // what a real v4 peer's encoder would produce
	rec := testRecording(t, 78, 12, -1, 0)
	for off := 0; off+testRate <= len(rec.Data[0]); off += testRate {
		if err := enc.Push("v4-patient", rec.Data[0][off:off+testRate], rec.Data[1][off:off+testRate]); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(30 * time.Second)
	for token := uint64(1); ; token++ {
		if err := enc.StatsReq(token); err != nil {
			t.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		var st serve.Stats
		for {
			m, err := dec.Next()
			if err != nil {
				t.Fatalf("reading stats reply: %v", err)
			}
			switch m.Kind {
			case wire.KindPrefilterDecl, wire.KindPushDigest, wire.KindAuditPush, wire.KindAuditRequest:
				t.Fatalf("shard sent a v5 %v frame to a v4 peer", m.Kind)
			}
			if m.Kind == wire.KindStats && m.Token == token {
				st = m.Stats
				break
			}
		}
		if st.Windows > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no windows classified over the v4 connection: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRouterSkipsPrefilterFramesToV4Shard: a router facing a v4 shard
// must negotiate down, report the fleet as prefilter-incapable, and —
// even if a client declares a prefilter anyway — silently skip every
// v5 frame while full-rate pushes keep flowing.
func TestRouterSkipsPrefilterFramesToV4Shard(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	c0, c1 := adcSamples(testRate, 31), adcSamples(testRate, 32)
	const wantBatches = 3
	got := make(chan wire.Msg, wantBatches)
	errs := make(chan error, 1)
	v5seen := make(chan wire.Kind, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			errs <- err
			return
		}
		defer conn.Close()
		dec := wire.NewDecoder(conn)
		dec.SetVersion(4)
		m, err := dec.Next()
		if err != nil || m.Kind != wire.KindHello {
			errs <- err
			return
		}
		if _, err := conn.Write(helloFrame(4)); err != nil { // we are a v4 shard
			errs <- err
			return
		}
		enc := wire.NewEncoder(conn)
		enc.SetVersion(4)
		for {
			m, err := dec.Next()
			if err != nil {
				return
			}
			switch m.Kind {
			case wire.KindPing:
				enc.Pong(m.Token)
				enc.Flush()
			case wire.KindPush, wire.KindPushQ:
				select {
				case got <- m:
				default:
				}
			case wire.KindPrefilterDecl, wire.KindPushDigest, wire.KindAuditPush, wire.KindAuditRequest:
				select {
				case v5seen <- m.Kind:
				default:
				}
				return
			}
		}
	}()

	r, err := Dial([]string{ln.Addr().String()}, Options{
		DialTimeout:  5 * time.Second,
		PingInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if r.SupportsPrefilter() {
		t.Fatal("router reports prefilter support against a v4 fleet")
	}

	h, err := r.Open("edge-patient")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	// A client that declares anyway: every v5 frame must evaporate at
	// the connection, not kill it or reach the old shard.
	if err := h.DeclarePrefilter(serve.PrefilterConfig{Gate: rt.GateConfig{Factor: 2.5, HistoryWindows: 64}}); err != nil {
		t.Fatal(err)
	}
	if err := h.PushDigest(serve.Digest{Windows: 3, SumAmp: 1, MinAmp: 0.1, MaxAmp: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := h.PushAudit(c0, c1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < wantBatches; i++ {
		pushSamples(t, h, c0, c1)
	}

	deadline := time.After(30 * time.Second)
	for seen := 0; seen < wantBatches; {
		select {
		case err := <-errs:
			t.Fatalf("fake v4 shard failed: %v", err)
		case k := <-v5seen:
			t.Fatalf("router sent a v5 %v frame to a v4 shard", k)
		case m := <-got:
			if len(m.C0) != len(c0) {
				t.Fatalf("push has %d samples, want %d", len(m.C0), len(c0))
			}
			for i := range c0 {
				if math.Float64bits(m.C0[i]) != math.Float64bits(c0[i]) ||
					math.Float64bits(m.C1[i]) != math.Float64bits(c1[i]) {
					t.Fatalf("sample %d corrupted crossing to the v4 shard", i)
				}
			}
			seen++
		case <-deadline:
			t.Fatalf("fake v4 shard never received the batches")
		}
	}
}
