package cluster

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"sync/atomic"

	"selflearn/internal/serve"
	"selflearn/internal/wire"
)

// shardConn is one shardd backend: the outbound job queue (a
// serve.Queue, so admission is byte-for-byte the local semantics), the
// TCP connection, and the manage loop that keeps the two attached —
// dial, Hello handshake, ping probe, teardown, reconnect with backoff.
// It implements serve.Shard, so streams enqueue at it exactly as they
// would at an in-process worker.
type shardConn struct {
	r    *Router
	addr string

	queue   *serve.Queue
	healthy atomic.Bool

	// uplinkBytes totals the framed bytes of every job this connection
	// put on the wire (pushes, digests, audits, confirms, declarations —
	// not control traffic), across reconnects. It is the cluster side of
	// the uplink-reduction accounting: digests standing in for suppressed
	// batches show up here as exactly the bytes they cost.
	uplinkBytes atomic.Uint64

	// writeMu serializes frame writers (the queue drainer, pings, and
	// stats requests) onto enc; enc is nil while disconnected.
	writeMu sync.Mutex
	enc     *wire.Encoder
	conn    net.Conn

	lastPong atomic.Int64  // UnixNano of the latest pong
	version  atomic.Uint32 // negotiated protocol version of the current/last session

	pendMu        sync.Mutex
	pending       map[uint64]chan serve.Stats
	pendingModels map[uint64]chan modelReply

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

func newShardConn(r *Router, addr string) *shardConn {
	sc := &shardConn{
		r:             r,
		addr:          addr,
		pending:       make(map[uint64]chan serve.Stats),
		pendingModels: make(map[uint64]chan modelReply),
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
	}
	sc.queue = serve.NewQueue(r.opts.QueueDepth, serve.QueueHooks{
		Shed: func(j serve.Job) {
			r.batchesShed.Add(1)
			r.emit(serve.Event{Kind: serve.EventShed, Patient: j.Patient, Time: time.Now()})
		},
		ConfirmLost: func(serve.Job) { r.confirmsDropped.Add(1) },
	})
	return sc
}

// Enqueue implements serve.Shard. A down backend refuses immediately —
// the queue would otherwise absorb QueueDepth jobs that may be stale by
// reconnect time — and the stream's push path re-resolves to a healthy
// peer instead.
func (sc *shardConn) Enqueue(p serve.AdmissionPolicy, j serve.Job) error {
	if !sc.healthy.Load() {
		return ErrShardDown
	}
	return sc.queue.Offer(p, j)
}

// Congested implements serve.Shard.
func (sc *shardConn) Congested(p serve.AdmissionPolicy) bool { return sc.queue.FastReject(p) }

// Depth implements serve.Shard.
func (sc *shardConn) Depth() int { return sc.queue.Depth() }

// manage is the connection's lifecycle loop, running until Router.Close.
// Backoff is exponential (doubling, capped at 8× base) with equal
// jitter: each wait lands uniformly in [backoff/2, backoff), so a
// fleet of routers cut off by the same partition does not redial the
// healed backend in lockstep. The jitter RNG is seeded from the shard
// address, keeping reconnect traces reproducible run to run.
func (sc *shardConn) manage() {
	defer close(sc.done)
	rng := rand.New(rand.NewSource(int64(fnv64(sc.addr))))
	backoff := sc.r.opts.ReconnectBackoff
	for {
		select {
		case <-sc.stop:
			return
		default:
		}
		conn, err := sc.r.opts.Dialer(sc.addr, sc.r.opts.DialTimeout)
		if err != nil {
			if !sc.sleep(jittered(rng, backoff)) {
				return
			}
			backoff = min(backoff*2, 8*sc.r.opts.ReconnectBackoff)
			continue
		}
		backoff = sc.r.opts.ReconnectBackoff
		stopped := sc.session(conn)
		if stopped {
			return
		}
		// Brief pause before redialing so a crash-looping backend is not
		// hammered.
		if !sc.sleep(jittered(rng, backoff)) {
			return
		}
	}
}

// jittered spreads one backoff delay uniformly over [d/2, d).
func jittered(rng *rand.Rand, d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)))
}

// sleep waits d unless the router closes first.
func (sc *shardConn) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-sc.stop:
		return false
	case <-t.C:
		return true
	}
}

// session runs one connected era: handshake, then reader + writer +
// ping loop until the connection dies or the router stops. Returns
// whether the router stopped (no reconnect wanted).
func (sc *shardConn) session(conn net.Conn) (stopped bool) {
	enc := wire.NewEncoder(conn)
	dec := wire.NewDecoder(conn)
	peerVersion, err := handshake(conn, enc, dec, sc.r.opts.DialTimeout)
	if err != nil {
		conn.Close()
		return false
	}
	sc.version.Store(peerVersion)

	sc.writeMu.Lock()
	sc.enc = enc
	sc.conn = conn
	sc.writeMu.Unlock()
	sc.lastPong.Store(time.Now().UnixNano())
	sc.healthy.Store(true)
	sc.r.epoch.Add(1)

	readerDone := make(chan struct{})
	go sc.readLoop(dec, readerDone)
	writerStop := make(chan struct{})
	writerDone := make(chan struct{})
	go sc.writeLoop(conn, writerStop, writerDone)

	ping := time.NewTicker(sc.r.opts.PingInterval)
	defer ping.Stop()
loop:
	for {
		select {
		case <-sc.stop:
			stopped = true
			break loop
		case <-readerDone:
			break loop
		case <-ping.C:
			if time.Since(time.Unix(0, sc.lastPong.Load())) > sc.r.opts.PingTimeout {
				break loop
			}
			if err := sc.send(func(e *wire.Encoder) error { return e.Ping(0) }); err != nil {
				break loop
			}
		}
	}

	// Teardown: unhealthy first so resolve stops handing this shard
	// out, then cut the socket to unblock reader and writer.
	sc.healthy.Store(false)
	sc.r.epoch.Add(1)
	sc.writeMu.Lock()
	sc.enc = nil
	sc.conn = nil
	sc.writeMu.Unlock()
	conn.Close()
	close(writerStop)
	<-writerDone
	<-readerDone
	// Jobs stranded in the outbound queue would be stale (possibly very
	// stale) by the time a reconnect drains them, and their patients are
	// already rerouting to surviving shards: discard and account.
	for {
		j, ok := sc.queue.TryRecv()
		if !ok {
			break
		}
		sc.r.lostJob(j)
	}
	sc.failPending()
	return stopped
}

// handshake exchanges Hello frames under a deadline and negotiates the
// protocol version: any peer at wire.MinVersion or newer is accepted,
// and both codec halves are pinned to min(wire.Version, peer's) so
// frames the peer cannot parse (PushQ toward a v3 shard, the prefilter
// family toward v4) are never sent, and its Stats frames are decoded in
// the layout it actually emits. Returns the negotiated version.
func handshake(conn net.Conn, enc *wire.Encoder, dec *wire.Decoder, timeout time.Duration) (uint32, error) {
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return 0, err
	}
	if err := enc.Hello(); err != nil {
		return 0, err
	}
	if err := enc.Flush(); err != nil {
		return 0, err
	}
	m, err := dec.Next()
	if err != nil {
		return 0, err
	}
	if m.Kind != wire.KindHello || m.Version < wire.MinVersion {
		return 0, fmt.Errorf("cluster: peer speaks %v v%d, want hello v%d or newer", m.Kind, m.Version, wire.MinVersion)
	}
	v := min(m.Version, wire.Version)
	enc.SetVersion(v)
	dec.SetVersion(v)
	return v, conn.SetDeadline(time.Time{})
}

// send runs one encode+flush under the write lock; ErrShardDown while
// disconnected. The configured write deadline bounds the flush so a
// peer that stopped reading cannot wedge the caller.
func (sc *shardConn) send(f func(*wire.Encoder) error) error {
	sc.writeMu.Lock()
	defer sc.writeMu.Unlock()
	if sc.enc == nil {
		return ErrShardDown
	}
	sc.conn.SetWriteDeadline(time.Now().Add(sc.r.opts.WriteDeadline))
	if err := f(sc.enc); err != nil { //selflearn:locked-ok writeMu IS the encoder serialization point; the write deadline bounds it
		return err
	}
	return sc.enc.Flush()
}

// writeLoop drains the outbound queue onto the connection, flushing
// whenever the queue goes idle so a trickle of batches is not held
// hostage by the 64 KB encoder buffer.
func (sc *shardConn) writeLoop(conn net.Conn, stop, done chan struct{}) {
	defer close(done)
	for {
		select {
		case <-stop:
			return
		case j := <-sc.queue.C():
			sc.writeMu.Lock()
			var err error
			if sc.enc == nil {
				err = ErrShardDown
			} else {
				sc.conn.SetWriteDeadline(time.Now().Add(sc.r.opts.WriteDeadline))
				before := sc.enc.BytesWritten()
				switch {
				case j.Confirm:
					err = sc.enc.Confirm(j.Patient)
				case j.Declare != nil:
					err = sc.enc.PrefilterDecl(j.Patient, *j.Declare)
				case j.Digest != nil:
					err = sc.enc.PushDigest(j.Patient, *j.Digest)
				case j.Audit:
					err = sc.enc.AuditPush(j.Patient, j.C0, j.C1)
				default:
					err = sc.enc.Push(j.Patient, j.C0, j.C1)
				}
				if err == wire.ErrVersionGated {
					// A prefilter frame toward a pre-v5 shard: the peer
					// cannot use it, and an audit window must never be
					// promoted into the live stream — drop silently. The
					// client should not be prefiltering against an old
					// fleet in the first place (see Router.SupportsPrefilter).
					err = nil
				}
				sc.uplinkBytes.Add(sc.enc.BytesWritten() - before)
			}
			if err == nil && sc.queue.Depth() == 0 {
				err = sc.enc.Flush()
			}
			sc.writeMu.Unlock()
			if err != nil {
				sc.r.lostJob(j)
				// Cut the socket so the reader and manage loop notice;
				// remaining queued jobs are cleared in teardown.
				conn.Close()
				return
			}
		}
	}
}

// readLoop decodes shard→client frames until the connection dies:
// events fan into the router's merged stream, stats replies resolve
// pending requests, pongs feed the health probe.
func (sc *shardConn) readLoop(dec *wire.Decoder, done chan struct{}) {
	defer close(done)
	for {
		m, err := dec.Next()
		if err != nil {
			return
		}
		switch m.Kind {
		case wire.KindEvent:
			if m.Event.Kind == serve.EventModelUpdated {
				sc.r.noteModelVersion(m.Event.Patient, m.Event.Version)
			}
			sc.r.emit(m.Event)
		case wire.KindPong:
			sc.lastPong.Store(time.Now().UnixNano())
		case wire.KindStats:
			sc.pendMu.Lock()
			ch := sc.pending[m.Token]
			delete(sc.pending, m.Token)
			sc.pendMu.Unlock()
			if ch != nil {
				ch <- m.Stats
			}
		case wire.KindModelAnnounce:
			sc.r.noteModelVersion(m.Patient, m.ModelVersion)
		case wire.KindAuditRequest:
			// The shard wants an audit sample from this patient's
			// prefiltering client; surface it as the same event a local
			// serve.Server emits, so gateways handle both modes uniformly.
			sc.r.emit(serve.Event{Kind: serve.EventAuditRequest, Patient: m.Patient, Time: time.Now()})
		case wire.KindModelPut:
			// A ModelGet reply; unsolicited puts toward a client have no
			// waiter and are dropped here.
			sc.pendMu.Lock()
			ch := sc.pendingModels[m.Token]
			delete(sc.pendingModels, m.Token)
			sc.pendMu.Unlock()
			if ch != nil {
				ch <- modelReply{version: m.ModelVersion, data: m.Model}
			}
		}
	}
}

// modelReply is one shard's answer to a model request: version 0 with
// no data means the shard holds no model for the patient.
type modelReply struct {
	version uint64
	data    []byte
}

// modelGet requests the backend's current checkpoint for a patient and
// waits for the correlated ModelPut reply.
func (sc *shardConn) modelGet(patient string, timeout time.Duration) (uint64, []byte, error) {
	token := sc.r.statsToken.Add(1)
	ch := make(chan modelReply, 1)
	sc.pendMu.Lock()
	sc.pendingModels[token] = ch
	sc.pendMu.Unlock()
	if err := sc.send(func(e *wire.Encoder) error { return e.ModelGet(token, patient) }); err != nil {
		sc.dropPendingModel(token)
		return 0, nil, err
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case rep := <-ch:
		return rep.version, rep.data, nil
	case <-t.C:
		sc.dropPendingModel(token)
		return 0, nil, fmt.Errorf("cluster: model reply timeout from %s", sc.addr)
	}
}

// modelPut pushes one versioned checkpoint to the backend — the
// router-mediated leg of a failover transfer. The put is flushed on the
// socket before it returns, so frames sent afterwards are processed
// after the shard installed the model.
func (sc *shardConn) modelPut(patient string, version uint64, checkpoint []byte) error {
	return sc.send(func(e *wire.Encoder) error { return e.ModelPut(0, patient, version, checkpoint) })
}

func (sc *shardConn) dropPendingModel(token uint64) {
	sc.pendMu.Lock()
	delete(sc.pendingModels, token)
	sc.pendMu.Unlock()
}

// stats requests one snapshot from the backend and waits for the
// correlated reply.
func (sc *shardConn) stats(timeout time.Duration) (serve.Stats, error) {
	token := sc.r.statsToken.Add(1)
	ch := make(chan serve.Stats, 1)
	sc.pendMu.Lock()
	sc.pending[token] = ch
	sc.pendMu.Unlock()
	if err := sc.send(func(e *wire.Encoder) error { return e.StatsReq(token) }); err != nil {
		sc.dropPending(token)
		return serve.Stats{}, err
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case st := <-ch:
		return st, nil
	case <-t.C:
		sc.dropPending(token)
		return serve.Stats{}, fmt.Errorf("cluster: stats timeout from %s", sc.addr)
	}
}

func (sc *shardConn) dropPending(token uint64) {
	sc.pendMu.Lock()
	delete(sc.pending, token)
	sc.pendMu.Unlock()
}

// failPending abandons stats and model requests in flight on a dying
// connection; their waiters time out.
func (sc *shardConn) failPending() {
	sc.pendMu.Lock()
	clear(sc.pending)
	clear(sc.pendingModels)
	sc.pendMu.Unlock()
}
