package cluster

import (
	"fmt"
	"sort"
	"time"

	"selflearn/internal/wire"
)

// ReplicationConfig enables shard-side checkpoint replication: every
// model a shard checkpoints is pushed to the next-in-line shard under
// the patient's rendezvous order, so the shard a patient would fail
// over to already holds their detector when the failover happens.
type ReplicationConfig struct {
	// Self is this shard's address exactly as it appears in Fleet and
	// in the routers' dial lists — rendezvous placement hashes the
	// strings, so they must agree fleet-wide.
	Self string
	// Fleet is every shard address, including Self. Placement for a
	// patient is the fleet ranked by rendezvous score: position 0 is
	// the patient's home shard, positions 1..Replicas hold replicas.
	Fleet []string
	// Replicas is how many next-in-line shards hold a copy of each
	// patient's checkpoint (default 1, capped at len(Fleet)-1).
	Replicas int
}

func (c ReplicationConfig) withDefaults() ReplicationConfig {
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if max := len(c.Fleet) - 1; c.Replicas > max {
		c.Replicas = max
	}
	return c
}

// Validate rejects a config whose Self is not part of the fleet — a
// misrendered address would silently disable replication for every
// patient (this shard would never find itself in any placement).
func (c ReplicationConfig) Validate() error {
	if len(c.Fleet) < 2 {
		return fmt.Errorf("cluster: replication fleet needs at least 2 shards, got %d", len(c.Fleet))
	}
	for _, addr := range c.Fleet {
		if addr == c.Self {
			return nil
		}
	}
	return fmt.Errorf("cluster: replication self %q not in fleet %v", c.Self, c.Fleet)
}

// replicator is the shard's checkpoint push path. Model updates arrive
// from the fanout loop (schedule), coalesce in a bounded queue, and a
// single goroutine pushes the latest checkpoint to the patient's
// next-in-line shard over a short-lived protocol connection. Pushes
// are best-effort: versions are monotonic and the receiver installs
// through the same guard as every model, so a lost push costs replica
// freshness until the next publish — never correctness. The chain is
// self-terminating: a shard forwards a replica it installed only while
// it sits inside the patient's replica set, so with Replicas=N each
// checkpoint settles on N shards beyond the home and stops.
type replicator struct {
	s    *ShardServer
	cfg  ReplicationConfig
	jobs chan string
	stop chan struct{}
	done chan struct{}
}

func newReplicator(s *ShardServer, cfg ReplicationConfig) *replicator {
	r := &replicator{
		s:    s,
		cfg:  cfg.withDefaults(),
		jobs: make(chan string, 1024),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go r.run()
	return r
}

// schedule enqueues one patient's latest checkpoint for replication.
// Non-blocking: under a burst the queue holds the patient already, and
// the push re-reads the newest version anyway.
func (r *replicator) schedule(patient string) {
	select {
	case r.jobs <- patient:
	case <-r.stop:
	default:
	}
}

func (r *replicator) close() {
	close(r.stop)
	<-r.done
}

func (r *replicator) run() {
	defer close(r.done)
	for {
		select {
		case <-r.stop:
			return
		case p := <-r.jobs:
			r.replicate(p)
		}
	}
}

// target returns the shard the patient's checkpoint should be pushed
// to from here: the next address after Self in the patient's
// rendezvous ranking, provided Self still sits inside the replica set
// (home at position 0, replicas at 1..Replicas). Outside the set — or
// with Self last in line — there is nowhere to push ("").
func (r *replicator) target(patient string) string {
	type ranked struct {
		addr  string
		score uint64
	}
	order := make([]ranked, 0, len(r.cfg.Fleet))
	for _, addr := range r.cfg.Fleet {
		order = append(order, ranked{addr, rendezvousScore(addr, patient)})
	}
	sort.Slice(order, func(i, j int) bool {
		// The shared ordering rule keeps placement and routing agreed.
		return rendezvousLess(order[i].addr, order[i].score, order[j].addr, order[j].score)
	})
	for i, o := range order {
		if o.addr != r.cfg.Self {
			continue
		}
		if i < r.cfg.Replicas && i+1 < len(order) {
			return order[i+1].addr
		}
		return ""
	}
	return ""
}

// replicate pushes the patient's current checkpoint to their
// next-in-line shard, retrying once after a short pause. Retries are
// bounded — not looped to success — because a push is already
// per-operation bounded (dial timeout, handshake deadline, write
// deadline) and best-effort by contract: an unreachable target costs
// replica freshness until the next publish, while an unbounded retry
// loop would wedge the replicator queue behind one dead peer.
func (r *replicator) replicate(patient string) {
	target := r.target(patient)
	if target == "" {
		return
	}
	version, data := r.s.modelCheckpoint(patient)
	if version == 0 {
		return
	}
	for attempt := 0; attempt < 2; attempt++ {
		if r.push(target, patient, version, data) {
			return
		}
		select {
		case <-r.stop:
			return
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// push dials the peer shard, handshakes, and delivers one ModelPut,
// reporting whether the frames were flushed. The connection is
// short-lived by design: checkpoint saves are retrain-rate events (per
// confirmed seizure), far too rare to be worth a persistent connection
// state machine. Dialing goes through Options.Dialer so replication
// links run under the same fault plan as router links.
func (r *replicator) push(addr, patient string, version uint64, data []byte) bool {
	conn, err := r.s.opts.Dialer(addr, r.s.opts.DialTimeout)
	if err != nil {
		return false
	}
	defer conn.Close()
	enc := wire.NewEncoder(conn)
	dec := wire.NewDecoder(conn)
	if _, err := handshake(conn, enc, dec, r.s.opts.DialTimeout); err != nil {
		return false
	}
	conn.SetWriteDeadline(time.Now().Add(r.s.opts.WriteDeadline))
	if err := enc.ModelPut(0, patient, version, data); err != nil {
		return false
	}
	return enc.Flush() == nil
}
