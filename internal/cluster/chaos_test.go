package cluster

import (
	"fmt"
	"net"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"selflearn/internal/fault"
	"selflearn/internal/ml/forest"
	"selflearn/internal/serve"
	"selflearn/internal/serve/servetest"
)

// This file is the chaos matrix: TestChaosMatrix pins the cluster
// invariants under injected infrastructure failure — partitions, torn
// checkpoints, slow links, flapping links, reset storms, half-open
// connections — the messy failures a SIGTERM-based failover test never
// exercises. Every scenario runs under a seeded fault.Plan and runs
// TWICE per test with identical signatures required, so a chaos run is
// as replayable as a clean one. Each run asserts, end to end:
//
//   - no lost confirms (every shard and the router count zero dropped)
//   - per-patient model versions strictly monotonic on every shard
//   - post-heal alarms bit-identical to an uninterrupted witness
//   - no leaked goroutines (servetest.CheckGoroutines)
//   - no stream stuck past its deadline (every await is bounded)

// trainWindows is the feature-window count of the 150 s training
// recording: 4 s windows sliding by 1 s.
const trainWindows = 150 - 4 + 1

// chaosLog is a per-shard synchronous event sink: unlike the router's
// merged channel it never drops, so it is the authoritative record of
// what a shard served — alarm stream times (the bit-identity witness)
// and the model-version install sequence (the monotonicity witness).
type chaosLog struct {
	mu       sync.Mutex
	alarms   map[string][]float64
	versions map[string][]uint64
}

func newChaosLog() *chaosLog {
	return &chaosLog{alarms: map[string][]float64{}, versions: map[string][]uint64{}}
}

func (l *chaosLog) sink(ev serve.Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch ev.Kind {
	case serve.EventAlarm:
		l.alarms[ev.Patient] = append(l.alarms[ev.Patient], ev.StreamTime)
	case serve.EventModelUpdated:
		l.versions[ev.Patient] = append(l.versions[ev.Patient], ev.Version)
	}
}

func (l *chaosLog) alarmTimes(patient string) []float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]float64(nil), l.alarms[patient]...)
}

// checkMonotonic fails the test unless every patient's install sequence
// on this shard is strictly increasing — a replayed replication push or
// a failover transfer regressing a version would surface here.
func (l *chaosLog) checkMonotonic(t *testing.T, label string) {
	t.Helper()
	l.mu.Lock()
	defer l.mu.Unlock()
	for p, vs := range l.versions {
		for i := 1; i < len(vs); i++ {
			if vs[i] <= vs[i-1] {
				t.Fatalf("%s: patient %s model versions not strictly monotonic: %v", label, p, vs)
			}
		}
	}
}

// versionString renders the install sequences deterministically for the
// rerun signature.
func (l *chaosLog) versionString() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	keys := make([]string, 0, len(l.versions))
	for p := range l.versions {
		keys = append(keys, p)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, p := range keys {
		fmt.Fprintf(&b, "%s=%v;", p, l.versions[p])
	}
	return b.String()
}

// chaosConfig parameterizes one fleet bring-up.
type chaosConfig struct {
	patient string
	// plan builds the fault plan once the home/replica addresses are
	// known (listener ports are ephemeral, so rules that target one side
	// of the fleet must reference it by role).
	plan func(home, replica string) *fault.Plan
	// tornStore gives the home shard a FileStore wrapped in the fault
	// store (label "store"), for checkpoint-corruption scenarios.
	tornStore bool
	// listenFault wraps the home shard's listener under the plan with
	// label "listen-home", for server-side fault scenarios.
	listenFault bool
	// readIdle overrides the home shard's ReadIdleTimeout.
	readIdle time.Duration
	// pingTimeout overrides the router's PingTimeout (default 150 ms).
	// Slow-link scenarios need it: a throttled 64 KB flush can hold the
	// write mutex long enough to starve the ping probe, and a degraded
	// link must read as slow, not dead.
	pingTimeout time.Duration
}

// chaosFleet is a two-shard replicated fleet plus a router, all dialing
// through one UNARMED injector: construction and the training phase run
// fault-free, and the scenario arms the plan exactly when its fault
// phase begins — plan time zero is the arm instant, not fleet boot.
type chaosFleet struct {
	t        *testing.T
	inj      *fault.Injector
	shards   [2]*testShard
	logs     [2]*chaosLog
	addrs    [2]string
	home     int // index of the patient's rendezvous home shard
	replica  int
	storeDir string
	r        *Router
	h        *Stream
	patient  string
}

func startChaosFleet(t *testing.T, cfg chaosConfig) *chaosFleet {
	t.Helper()
	f := &chaosFleet{t: t, patient: cfg.patient}
	var lns [2]net.Listener
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		f.addrs[i] = ln.Addr().String()
	}
	// Roles follow the rendezvous, so the scenario is invariant to which
	// ephemeral port sorts where — the fault plan always hits the side it
	// names, and the rerun signature never depends on port numbers.
	f.home, f.replica = 0, 1
	sA, sB := rendezvousScore(f.addrs[0], cfg.patient), rendezvousScore(f.addrs[1], cfg.patient)
	if !rendezvousLess(f.addrs[0], sA, f.addrs[1], sB) {
		f.home, f.replica = 1, 0
	}

	inj, err := fault.New(cfg.plan(f.addrs[f.home], f.addrs[f.replica]))
	if err != nil {
		t.Fatal(err)
	}
	f.inj = inj

	fleet := []string{f.addrs[0], f.addrs[1]}
	for i := range f.shards {
		f.logs[i] = newChaosLog()
		opts := []serve.Option{serve.WithEventBuffer(4096), serve.WithEventSink(f.logs[i].sink)}
		if cfg.tornStore && i == f.home {
			f.storeDir = t.TempDir()
			fs, err := serve.NewFileStore(f.storeDir)
			if err != nil {
				t.Fatal(err)
			}
			opts = append(opts, serve.WithModelStore(fault.NewStore(fs, inj, "store")))
		}
		srv, err := serve.New(testServerConfig(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		ln := lns[i]
		if cfg.listenFault && i == f.home {
			ln = fault.NewListener(ln, inj, "listen-home")
		}
		sopts := Options{
			Replication:   &ReplicationConfig{Self: f.addrs[i], Fleet: fleet, Replicas: 1},
			WriteDeadline: time.Second,
			Dialer:        inj.Dial,
		}
		if cfg.readIdle > 0 && i == f.home {
			sopts.ReadIdleTimeout = cfg.readIdle
		}
		f.shards[i] = &testShard{srv: srv, ss: Serve(srv, ln, sopts)}
	}

	pingTimeout := cfg.pingTimeout
	if pingTimeout == 0 {
		pingTimeout = 150 * time.Millisecond
	}
	// Short deadlines everywhere: failure detection (and teardown, which
	// waits behind at most one gated write) must run at test speed, and a
	// partitioned dial must give up in 500 ms, not the 3 s default.
	f.r, err = Dial(fleet, Options{
		DialTimeout:      500 * time.Millisecond,
		PingInterval:     25 * time.Millisecond,
		PingTimeout:      pingTimeout,
		ReconnectBackoff: 20 * time.Millisecond,
		WriteDeadline:    500 * time.Millisecond,
		Dialer:           inj.Dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.r.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	f.h, err = f.r.Open(cfg.patient)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func (f *chaosFleet) close() {
	f.r.Close()
	for _, s := range f.shards {
		s.stop()
	}
}

func (f *chaosFleet) homeShard() *testShard    { return f.shards[f.home] }
func (f *chaosFleet) replicaShard() *testShard { return f.shards[f.replica] }

// pollUntil is the bounded wait every chaos phase runs under — a stream
// stuck past its deadline is itself an invariant violation.
func pollUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("%s: still not true after %v", what, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func awaitShardWindows(t *testing.T, ts *testShard, want uint64, what string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for ts.srv.Snapshot().Windows < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s: still %d windows after 60s, want %d (stats %+v)",
				what, ts.srv.Snapshot().Windows, want, ts.srv.Snapshot())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := ts.srv.Snapshot().Windows; got != want {
		t.Fatalf("%s: windows = %d, want exactly %d", what, got, want)
	}
}

// train runs the self-learning phase: stream a 150 s recording with a
// seizure, confirm it, wait for the retrain on the home shard and the
// replica install on the other — the state every scenario's fault phase
// starts from. armBeforeConfirm arms the plan between the stream and
// the confirmation, for plans that must fault the retrain's checkpoint
// save. Returns the replica's model — the reference checkpoint for
// failover witnesses (it crossed the wire, so the witness classifies
// with exactly the representation a failed-over patient gets).
func (f *chaosFleet) train(armBeforeConfirm bool) (*forest.FlatForest, uint64) {
	t := f.t
	t.Helper()
	push(t, f.h, testRecording(t, 21, 150, 80, 22))
	if armBeforeConfirm {
		f.inj.Arm()
	}
	confirm(t, f.h)
	pollUntil(t, 60*time.Second, "home retrain", func() bool {
		return f.homeShard().srv.Snapshot().Retrains >= 1
	})
	awaitModelVersion(t, f.homeShard().srv, f.patient, 1, "home publish")
	v := awaitModelVersion(t, f.replicaShard().srv, f.patient, 1, "replication to the replica shard")
	pollUntil(t, 30*time.Second, "router version table", func() bool {
		return f.r.ModelVersions()[f.patient] >= v
	})
	awaitShardWindows(t, f.homeShard(), trainWindows, "training drain")
	m, mv := f.replicaShard().srv.ModelVersioned(f.patient)
	if m == nil {
		t.Fatal("no replica checkpoint after training")
	}
	return m, mv
}

// checkNoLostConfirms asserts the no-lost-confirms ledger: every
// confirm the run submitted was served by exactly one shard; none died
// in a queue, on a socket, or in admission.
func (f *chaosFleet) checkNoLostConfirms(wantServed uint64) {
	t := f.t
	t.Helper()
	var served uint64
	for i, s := range f.shards {
		st := s.srv.Snapshot()
		if st.ConfirmsDropped != 0 {
			t.Fatalf("shard %d dropped %d confirms", i, st.ConfirmsDropped)
		}
		served += st.Confirms
	}
	if got := f.r.confirmsDropped.Load(); got != 0 {
		t.Fatalf("router lost %d confirms in transit", got)
	}
	if served != wantServed {
		t.Fatalf("confirms served = %d, want %d", served, wantServed)
	}
}

func (f *chaosFleet) checkMonotonicVersions() {
	f.logs[0].checkMonotonic(f.t, "shard 0")
	f.logs[1].checkMonotonic(f.t, "shard 1")
}

// awaitPlanIdle waits until plan time has passed the last fault window
// (plus margin for in-flight detection), so flap-style scenarios can
// stream their post-heal phase against a quiet network.
func awaitPlanIdle(t *testing.T, inj *fault.Injector) {
	t.Helper()
	var last time.Duration
	for _, w := range inj.Windows() {
		if w.End > last {
			last = w.End
		}
	}
	pollUntil(t, last+10*time.Second, "fault plan drained", func() bool {
		return inj.Elapsed() > last+300*time.Millisecond
	})
}

// referenceTail serves the identical post-failover tail on a fresh
// single-process server seeded with the replica checkpoint — the
// uninterrupted witness a warm failover must match bit for bit.
func referenceTail(t *testing.T, patient string, model *forest.FlatForest, version uint64, c0, c1 []float64) (windows uint64, alarms []float64) {
	t.Helper()
	log := newChaosLog()
	refSrv, err := serve.New(testServerConfig(), serve.WithEventBuffer(4096), serve.WithEventSink(log.sink))
	if err != nil {
		t.Fatal(err)
	}
	defer refSrv.Close()
	if !refSrv.InstallModel(patient, model, version) {
		t.Fatal("reference server refused the checkpoint")
	}
	h, err := refSrv.Open(patient)
	if err != nil {
		t.Fatal(err)
	}
	pushSamples(t, h, c0, c1)
	refSrv.Close()
	return refSrv.Snapshot().Windows, log.alarmTimes(patient)
}

func fmtTimes(ts []float64) string {
	parts := make([]string, len(ts))
	for i, v := range ts {
		parts[i] = fmt.Sprintf("%.6f", v)
	}
	return strings.Join(parts, ",")
}

func sameTimes(a, b []float64) bool { return fmtTimes(a) == fmtTimes(b) }

// chaosFailoverTail drives phase two of a failover scenario: stream
// 60 s of a fresh recording to the home shard, break the home via
// breakHome, wait for the reroute, and serve the remaining 90 s —
// including the seizure at 100 s — from the replica. It asserts the
// tail matches the uninterrupted reference bit for bit and returns the
// run's signature for the rerun comparison.
func chaosFailoverTail(f *chaosFleet, refModel *forest.FlatForest, refVersion uint64, breakHome func()) string {
	t := f.t
	t.Helper()
	const killAt = 60
	rec := testRecording(t, 22, 150, 100, 22)
	c0, c1 := rec.Data[0], rec.Data[1]
	pushSamples(t, f.h, c0[:killAt*testRate], c1[:killAt*testRate])
	// Drain the head completely before breaking the home: nothing may be
	// queued when the link dies, so the only batches the fault can touch
	// are ones the retry loop re-sends — losses stay observable, counts
	// stay exact.
	awaitShardWindows(t, f.homeShard(), trainWindows+killAt, "pre-fault head drain")

	breakHome()
	homeConn := f.r.shards[f.home]
	pollUntil(t, 15*time.Second, "failover off the home shard", func() bool {
		sc, err := f.r.pick(f.patient)
		return err == nil && sc != homeConn
	})
	pushSamples(t, f.h, c0[killAt*testRate:], c1[killAt*testRate:])
	const wantTail = 150 - killAt - 4 + 1
	awaitShardWindows(t, f.replicaShard(), wantTail, "failover tail drain")

	refWindows, refAlarms := referenceTail(t, f.patient, refModel, refVersion, c0[killAt*testRate:], c1[killAt*testRate:])
	if refWindows != wantTail {
		t.Fatalf("reference windows = %d, want %d", refWindows, wantTail)
	}
	if len(refAlarms) == 0 {
		t.Fatal("reference tail raised no alarms; bit-identity would be vacuous")
	}
	tailAlarms := f.logs[f.replica].alarmTimes(f.patient)
	if !sameTimes(tailAlarms, refAlarms) {
		t.Fatalf("post-heal alarms diverged from the uninterrupted witness:\n  failover:  [%s]\n  reference: [%s]",
			fmtTimes(tailAlarms), fmtTimes(refAlarms))
	}
	// Warmth must come from replication, not a retrain on the replica.
	if rs := f.replicaShard().srv.Snapshot(); rs.Retrains != 0 {
		t.Fatalf("replica retrained (%d×); tail warmth is not replication's", rs.Retrains)
	}
	return fmt.Sprintf("tail=[%s] head=[%s] v0=%s v1=%s",
		fmtTimes(tailAlarms), fmtTimes(f.logs[f.home].alarmTimes(f.patient)),
		f.logs[0].versionString(), f.logs[1].versionString())
}

// chaosHealedRun drives a full-link-chaos scenario: after training, arm
// the plan (flaps or resets hit the idle links), wait for it to drain,
// then stream a full second recording through the healed home — the
// server-side serving state must have survived every teardown
// untouched, so the whole run matches a single-process server fed the
// identical sequence.
func chaosHealedRun(t *testing.T, cfg chaosConfig) string {
	t.Helper()
	f := startChaosFleet(t, cfg)
	defer f.close()
	f.train(false)

	f.inj.Arm()
	awaitPlanIdle(t, f.inj)
	// The post-heal stream must land on the healed home, not fail over:
	// wait until the router routes the patient there again.
	pollUntil(t, 15*time.Second, "home link re-established", func() bool {
		sc, err := f.r.pick(f.patient)
		return err == nil && sc == f.r.shards[f.home]
	})
	rec := testRecording(t, 22, 150, 100, 22)
	push(t, f.h, rec)
	awaitShardWindows(t, f.homeShard(), trainWindows+150, "post-heal drain")
	if got := f.replicaShard().srv.Snapshot().Windows; got != 0 {
		t.Fatalf("replica served %d windows; the stream strayed off its healed home", got)
	}

	// Uninterrupted witness: a local server fed the identical sequence.
	log := newChaosLog()
	refSrv, err := serve.New(testServerConfig(), serve.WithEventBuffer(4096), serve.WithEventSink(log.sink))
	if err != nil {
		t.Fatal(err)
	}
	defer refSrv.Close()
	h, err := refSrv.Open(f.patient)
	if err != nil {
		t.Fatal(err)
	}
	push(t, h, testRecording(t, 21, 150, 80, 22))
	confirm(t, h)
	pollUntil(t, 60*time.Second, "witness retrain", func() bool {
		return refSrv.Snapshot().Retrains >= 1
	})
	push(t, h, rec)
	refSrv.Close()

	refAlarms := log.alarmTimes(f.patient)
	gotAlarms := f.logs[f.home].alarmTimes(f.patient)
	if len(refAlarms) == 0 {
		t.Fatal("witness raised no alarms; continuity would be vacuous")
	}
	if !sameTimes(gotAlarms, refAlarms) {
		t.Fatalf("post-heal alarms diverged from the uninterrupted witness:\n  chaos:     [%s]\n  reference: [%s]",
			fmtTimes(gotAlarms), fmtTimes(refAlarms))
	}
	f.checkNoLostConfirms(1)
	f.checkMonotonicVersions()
	return fmt.Sprintf("alarms=[%s] v0=%s v1=%s",
		fmtTimes(gotAlarms), f.logs[0].versionString(), f.logs[1].versionString())
}

// chaosPartitionDuringReplay: the home shard is fully partitioned
// mid-replay (dials block, established conns stall both ways); the
// router's ping probe detects it and the tail fails over warm.
func chaosPartitionDuringReplay(t *testing.T) string {
	f := startChaosFleet(t, chaosConfig{
		patient: "chaos-partition",
		plan: func(home, replica string) *fault.Plan {
			// One long window: the partition outlives the run, so the
			// stream cannot flap back to the home mid-tail.
			return &fault.Plan{Seed: 801, Rules: []fault.Rule{
				{Peer: home, Kind: fault.KindPartition, Start: 0, Duration: 120},
			}}
		},
	})
	defer f.close()
	refModel, refVersion := f.train(false)
	sig := chaosFailoverTail(f, refModel, refVersion, f.inj.Arm)
	f.checkNoLostConfirms(1)
	f.checkMonotonicVersions()
	return sig
}

// chaosTornCheckpoint: the retrain's checkpoint save is torn mid-write
// (crash-during-save), then the home dies. Replication pushes from
// memory, so the replica is warm anyway — and the torn file on disk
// must be quarantined, never trusted, on the next load.
func chaosTornCheckpoint(t *testing.T) string {
	f := startChaosFleet(t, chaosConfig{
		patient:   "chaos-torn",
		tornStore: true,
		plan: func(home, replica string) *fault.Plan {
			return &fault.Plan{Seed: 802, Rules: []fault.Rule{
				{Peer: "store", Kind: fault.KindTornWrite, Start: 0, Duration: 300, Fraction: 0.5},
			}}
		},
	})
	defer f.close()
	refModel, refVersion := f.train(true) // arm before confirm: the retrain saves torn
	if got := f.homeShard().srv.Snapshot().StoreErrors; got == 0 {
		t.Fatal("no store errors recorded; the torn write did not happen")
	}
	sig := chaosFailoverTail(f, refModel, refVersion, f.homeShard().stop)
	f.checkNoLostConfirms(1)
	f.checkMonotonicVersions()

	// The torn file must fail to load and be quarantined, not parsed.
	fs, err := serve.NewFileStore(f.storeDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fs.LoadVersion(f.patient); err == nil {
		t.Fatal("torn checkpoint loaded without error")
	}
	quarantined, err := filepath.Glob(filepath.Join(f.storeDir, "*.corrupt*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(quarantined) == 0 {
		t.Fatal("torn checkpoint was not quarantined")
	}
	return sig
}

// chaosSlowReplica: the home dies while the replica's link is degraded
// (added latency, capped bandwidth). Slow must mean slow — late, but
// with every byte intact and every alarm bit-identical.
func chaosSlowReplica(t *testing.T) string {
	f := startChaosFleet(t, chaosConfig{
		patient: "chaos-slow",
		// Home death is detected by its socket dying (stop() below), not
		// by ping timeout, so the generous timeout costs no detection
		// latency — it only keeps the degraded replica link alive.
		pingTimeout: 500 * time.Millisecond,
		plan: func(home, replica string) *fault.Plan {
			return &fault.Plan{Seed: 803, Rules: []fault.Rule{
				{Peer: replica, Kind: fault.KindLatency, Start: 0, Duration: 120, LatencyMs: 15},
				{Peer: replica, Kind: fault.KindThrottle, Start: 0, Duration: 120, KBps: 512},
			}}
		},
	})
	defer f.close()
	refModel, refVersion := f.train(false)
	sig := chaosFailoverTail(f, refModel, refVersion, func() {
		f.inj.Arm()
		f.homeShard().stop()
	})
	f.checkNoLostConfirms(1)
	f.checkMonotonicVersions()
	return sig
}

// chaosFlappingLink: the home's link partitions and heals five times in
// quick succession — each flap tears the session down and reconnects.
// The server-side patient sessions must ride through every flap.
func chaosFlappingLink(t *testing.T) string {
	return chaosHealedRun(t, chaosConfig{
		patient: "chaos-flap",
		plan: func(home, replica string) *fault.Plan {
			return &fault.Plan{Seed: 804, Rules: []fault.Rule{
				{Peer: home, Kind: fault.KindPartition, Start: 0, Duration: 0.2, Repeat: 4, Period: 0.6, Jitter: 0.1},
			}}
		},
	})
}

// chaosResetStorm: every connection in the fleet — router links and
// replication pushes alike — is RST on sight, six windows in a row.
func chaosResetStorm(t *testing.T) string {
	return chaosHealedRun(t, chaosConfig{
		patient: "chaos-reset",
		plan: func(home, replica string) *fault.Plan {
			return &fault.Plan{Seed: 805, Rules: []fault.Rule{
				{Peer: "*", Kind: fault.KindReset, Start: 0, Duration: 0.1, Repeat: 5, Period: 0.4, Jitter: 0.05},
			}}
		},
	})
}

// chaosHalfOpenReap: the home's listener-side connections go half-open
// (host vanished: reads hang forever, writes black-hole, no FIN). The
// router's ping probe fails the patient over; the shard's per-frame
// read deadline must reap the dead connection — the goroutine guard
// would catch it pinned forever otherwise.
func chaosHalfOpenReap(t *testing.T) string {
	f := startChaosFleet(t, chaosConfig{
		patient:     "chaos-halfopen",
		listenFault: true,
		readIdle:    300 * time.Millisecond,
		plan: func(home, replica string) *fault.Plan {
			return &fault.Plan{Seed: 806, Rules: []fault.Rule{
				{Peer: "listen-home", Kind: fault.KindDropAfter, Start: 0, Duration: 120, AfterBytes: 0},
			}}
		},
	})
	defer f.close()
	refModel, refVersion := f.train(false)

	// Capture the router's server-side connection before the fault: this
	// is the one that goes half-open and must be reaped by the read
	// deadline, never by a FIN (none will come).
	home := f.homeShard()
	home.ss.mu.Lock()
	if n := len(home.ss.conns); n != 1 {
		home.ss.mu.Unlock()
		t.Fatalf("home has %d connections before the fault, want 1 (the router)", n)
	}
	var orig *clientConn
	for c := range home.ss.conns {
		orig = c
	}
	home.ss.mu.Unlock()

	sig := chaosFailoverTail(f, refModel, refVersion, f.inj.Arm)
	pollUntil(t, 10*time.Second, "half-open connection reaped by the read deadline", func() bool {
		home.ss.mu.Lock()
		_, alive := home.ss.conns[orig]
		home.ss.mu.Unlock()
		return !alive
	})
	f.checkNoLostConfirms(1)
	f.checkMonotonicVersions()
	return sig
}

// TestChaosMatrix runs every chaos scenario twice at its fixed plan
// seed and requires the two runs to produce byte-identical signatures
// (alarm stream times, model install sequences): deterministic fault
// injection means a chaos failure reproduces, not flakes.
func TestChaosMatrix(t *testing.T) {
	scenarios := []struct {
		name string
		run  func(t *testing.T) string
	}{
		{"partition-during-replay", chaosPartitionDuringReplay},
		{"torn-checkpoint-then-failover", chaosTornCheckpoint},
		{"slow-replica", chaosSlowReplica},
		{"flapping-link", chaosFlappingLink},
		{"reset-storm", chaosResetStorm},
		{"half-open-reap", chaosHalfOpenReap},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			servetest.CheckGoroutines(t)
			first := sc.run(t)
			second := sc.run(t)
			if first != second {
				t.Fatalf("rerun diverged at a fixed seed:\n  run 1: %s\n  run 2: %s", first, second)
			}
		})
	}
}
