package cluster

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"selflearn/internal/serve"
	"selflearn/internal/serve/servetest"
	"selflearn/internal/signal"
	"selflearn/internal/synth"
	"selflearn/internal/wire"
)

// testRate keeps feature extraction cheap: 4 s windows at 128 Hz are
// 512 samples, still divisible by 2^7 for the level-7 DWT.
const testRate = 128

func testServerConfig() serve.Config {
	return serve.Config{
		Workers:            2,
		SampleRate:         testRate,
		History:            4 * time.Minute,
		AvgSeizureDuration: 20 * time.Second,
	}
}

// testShard stands up one shardd-equivalent backend on loopback.
type testShard struct {
	srv *serve.Server
	ss  *ShardServer
}

func startShard(t *testing.T, addr string) *testShard {
	return startShardOpts(t, addr, Options{})
}

func startShardOpts(t *testing.T, addr string, opts Options) *testShard {
	t.Helper()
	srv, err := serve.New(testServerConfig(), serve.WithEventBuffer(4096))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	return &testShard{srv: srv, ss: Serve(srv, ln, opts)}
}

func (ts *testShard) stop() {
	ts.ss.Close()
	ts.srv.Close()
}

func (ts *testShard) addr() string { return ts.ss.Addr().String() }

func testRecording(t testing.TB, seed int64, duration, seizureStart, seizureDur float64) *signal.Recording {
	t.Helper()
	cfg := synth.RecordConfig{
		PatientID:  fmt.Sprintf("synthetic-%d", seed),
		RecordID:   "r1",
		Seed:       seed,
		Duration:   duration,
		SampleRate: testRate,
		Background: synth.DefaultBackground(),
	}
	if seizureStart >= 0 {
		cfg.Seizures = []synth.SeizureEvent{{Start: seizureStart, Duration: seizureDur, Config: synth.DefaultSeizure()}}
	}
	rec, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// pusher is the handle surface shared by serve.Stream and
// cluster.Stream; the equivalence scenario drives both through it.
type pusher interface {
	Push(c0, c1 []float64) error
	Confirm() error
}

// pushSamples streams raw channels through h in one-second batches,
// retrying transient refusals (backpressure locally; backpressure or
// shard outage in cluster mode).
func pushSamples(t testing.TB, h pusher, c0, c1 []float64) {
	t.Helper()
	for off := 0; off < len(c0); off += testRate {
		end := min(off+testRate, len(c0))
		for {
			err := h.Push(c0[off:end], c1[off:end])
			if err == nil {
				break
			}
			switch err {
			case serve.ErrBackpressure, ErrShardDown, ErrNoShards:
				time.Sleep(time.Millisecond)
			default:
				t.Fatalf("Push: %v", err)
			}
		}
	}
}

// push streams rec through h in one-second batches.
func push(t testing.TB, h pusher, rec *signal.Recording) {
	t.Helper()
	pushSamples(t, h, rec.Data[0], rec.Data[1])
}

func confirm(t testing.TB, h pusher) {
	t.Helper()
	for {
		err := h.Confirm()
		if err == nil {
			return
		}
		switch err {
		case serve.ErrBackpressure, ErrShardDown, ErrNoShards:
			time.Sleep(time.Millisecond)
		default:
			t.Fatalf("Confirm: %v", err)
		}
	}
}

// backend abstracts the two serving modes for the equivalence test.
type backend interface {
	open(patient string) (pusher, error)
	events() <-chan serve.Event
	snapshot() serve.Stats
}

type localBackend struct{ srv *serve.Server }

func (b localBackend) open(p string) (pusher, error) { return b.srv.Open(p) }
func (b localBackend) events() <-chan serve.Event    { return b.srv.Events() }
func (b localBackend) snapshot() serve.Stats         { return b.srv.Snapshot() }

type clusterBackend struct{ r *Router }

func (b clusterBackend) open(p string) (pusher, error) { return b.r.Open(p) }
func (b clusterBackend) events() <-chan serve.Event    { return b.r.Events() }
func (b clusterBackend) snapshot() serve.Stats         { return b.r.Snapshot() }

// awaitSnapshot polls until cond holds; cluster counters are remote, so
// assertions poll instead of relying on local synchronization.
func awaitSnapshot(t testing.TB, b backend, what string, cond func(serve.Stats) bool) serve.Stats {
	t.Helper()
	deadline := time.Now().Add(90 * time.Second)
	for {
		st := b.snapshot()
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never happened: %+v", what, st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// scenarioInner runs the full self-learning loop for each patient —
// stream a seizure, confirm it, quiesce retraining, then stream a fresh
// seizure against the retrained detector — and returns per-patient
// alarm counts (from events), the final stats, and the event-collector
// completion channel (closed once the backend closes its event stream).
// Phases quiesce between pushes, so the outcome is deterministic for a
// given backend.
func scenarioInner(t *testing.T, b backend, patients []string) (map[string]int, serve.Stats, chan struct{}) {
	t.Helper()
	var alarmsMu sync.Mutex
	alarms := map[string]int{}
	eventsDone := make(chan struct{})
	events := b.events()
	go func() {
		defer close(eventsDone)
		for ev := range events {
			if ev.Kind == serve.EventAlarm {
				alarmsMu.Lock()
				alarms[ev.Patient]++
				alarmsMu.Unlock()
			}
		}
	}()

	handles := map[string]pusher{}
	for i, p := range patients {
		h, err := b.open(p)
		if err != nil {
			t.Fatal(err)
		}
		handles[p] = h
		push(t, h, testRecording(t, int64(10+i), 150, 80, 22))
		confirm(t, h)
	}
	want := uint64(len(patients))
	awaitSnapshot(t, b, "retraining", func(st serve.Stats) bool {
		if st.RetrainErrors > 0 || st.ConfirmsDropped > 0 {
			t.Fatalf("retrain failed or confirm lost: %+v", st)
		}
		return st.Retrains >= want
	})
	for i, p := range patients {
		push(t, handles[p], testRecording(t, int64(100+i), 150, 90, 22))
	}
	// Per patient: 150−4+1 windows while the first stream fills the
	// window, then 150 more on the continued session.
	wantWindows := uint64(len(patients)) * uint64((150-4+1)+150)
	st := awaitSnapshot(t, b, "window drain", func(st serve.Stats) bool {
		return st.Windows >= wantWindows
	})
	if st.Windows != wantWindows {
		t.Fatalf("windows = %d, want %d", st.Windows, wantWindows)
	}
	// Wait for the alarm events to traverse the delivery path before
	// closing it, then compare against the counter.
	st = awaitSnapshot(t, b, "alarm delivery", func(serve.Stats) bool {
		alarmsMu.Lock()
		total := 0
		for _, n := range alarms {
			total += n
		}
		alarmsMu.Unlock()
		return uint64(total) >= st.Alarms
	})
	return alarms, st, eventsDone
}

// runScenario closes the backend once the scenario quiesces (ending the
// event stream) and waits for the collector before handing results back.
func runScenario(t *testing.T, b backend, patients []string, closeBackend func()) (map[string]int, serve.Stats) {
	alarms, st, done := scenarioInner(t, b, patients)
	closeBackend()
	<-done
	return alarms, st
}

// TestClusterMatchesSingleProcess is the PR's acceptance scenario: the
// same per-patient workload served by one in-process serve.Server and
// by two shardd processes behind a Router must produce bit-identical
// predictions — pinned here as identical per-patient alarm counts and
// identical window totals, with zero events lost in either mode.
// Determinism holds because a patient's batches arrive in order at
// exactly one stock serve.Server either way, and retrain seeds derive
// from the patient, not the topology.
func TestClusterMatchesSingleProcess(t *testing.T) {
	servetest.CheckGoroutines(t)
	shardA := startShard(t, "127.0.0.1:0")
	defer shardA.stop()
	shardB := startShard(t, "127.0.0.1:0")
	defer shardB.stop()
	r, err := Dial([]string{shardA.addr(), shardB.addr()}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Pick two patients rendezvous-homed on each shard, so the cluster
	// run is guaranteed to exercise both processes (listener ports — and
	// with them the routing — vary per run).
	patients := make([]string, 0, 4)
	perShard := map[*shardConn]int{}
	for i := 0; len(patients) < 4 && i < 1000; i++ {
		p := fmt.Sprintf("chb%03d", i)
		sc, err := r.pick(p)
		if err != nil {
			t.Fatal(err)
		}
		if perShard[sc] < 2 {
			perShard[sc]++
			patients = append(patients, p)
		}
	}
	if len(patients) < 4 {
		t.Fatalf("could not spread 4 patients over 2 shards: %v", patients)
	}

	srv, err := serve.New(testServerConfig(), serve.WithEventBuffer(4096))
	if err != nil {
		t.Fatal(err)
	}
	localAlarms, localStats := runScenario(t, localBackend{srv}, patients, srv.Close)
	if localStats.EventsDropped != 0 {
		t.Fatalf("local events dropped: %+v", localStats)
	}
	if localStats.Alarms == 0 {
		t.Fatal("local scenario raised no alarms; equivalence would be vacuous")
	}

	clusterAlarms, clusterStats := runScenario(t, clusterBackend{r}, patients, r.Close)
	if clusterStats.EventsDropped != 0 {
		t.Fatalf("cluster events dropped: %+v", clusterStats)
	}

	// Both shards must actually serve patients — otherwise this is a
	// single-process test wearing a TCP hat.
	if a, b := shardA.srv.Snapshot().Windows, shardB.srv.Snapshot().Windows; a == 0 || b == 0 {
		t.Fatalf("workload not spread across shards: windows %d / %d", a, b)
	}
	if clusterStats.Windows != localStats.Windows {
		t.Fatalf("windows: cluster %d vs local %d", clusterStats.Windows, localStats.Windows)
	}
	if clusterStats.Alarms != localStats.Alarms {
		t.Fatalf("alarms: cluster %d vs local %d", clusterStats.Alarms, localStats.Alarms)
	}
	for _, p := range patients {
		if clusterAlarms[p] != localAlarms[p] {
			t.Fatalf("patient %s alarms: cluster %d vs local %d (full: %v vs %v)",
				p, clusterAlarms[p], localAlarms[p], clusterAlarms, localAlarms)
		}
	}
}

// TestFailoverReroutesAndRecovers: killing a shard marks it unhealthy
// via the broken connection, live streams re-resolve to the surviving
// shard and keep serving, and restarting the shard on the same address
// routes its rendezvous patients home again.
func TestFailoverReroutesAndRecovers(t *testing.T) {
	shardA := startShard(t, "127.0.0.1:0")
	defer shardA.stop()
	shardB := startShard(t, "127.0.0.1:0")
	addrB := shardB.addr()

	r, err := Dial([]string{shardA.addr(), addrB}, Options{
		PingInterval:     25 * time.Millisecond,
		PingTimeout:      150 * time.Millisecond,
		ReconnectBackoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Find a patient whose rendezvous home is shard B.
	connB := r.shards[1]
	patient := ""
	for i := 0; i < 1000; i++ {
		p := fmt.Sprintf("patient-%03d", i)
		if sc, err := r.pick(p); err == nil && sc == connB {
			patient = p
			break
		}
	}
	if patient == "" {
		t.Fatal("no patient rendezvous-routed to shard B")
	}
	h, err := r.Open(patient)
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecording(t, 77, 30, -1, 0)
	push(t, h, rec)
	awaitShardWindows := func(ts *testShard, want uint64, what string) {
		deadline := time.Now().Add(30 * time.Second)
		for ts.srv.Snapshot().Windows < want {
			if time.Now().After(deadline) {
				t.Fatalf("%s: windows = %d, want ≥ %d", what, ts.srv.Snapshot().Windows, want)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	awaitShardWindows(shardB, 1, "pre-failover traffic to B")

	// Kill B. The severed connection fails fast; ping timeout is the
	// backstop for silent deaths.
	shardB.stop()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if sc, err := r.pick(patient); err == nil && sc != connB {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("patient never rerouted off the dead shard")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The same live handle now reaches the survivor.
	push(t, h, rec)
	awaitShardWindows(shardA, 1, "failover traffic to A")

	// Resurrect B on its old address: the router reconnects and the
	// patient routes home (their session there restarts cold — models
	// survive only via a shared store, which is a deployment choice).
	shardB2 := startShard(t, addrB)
	defer shardB2.stop()
	deadline = time.Now().Add(10 * time.Second)
	for {
		if sc, err := r.pick(patient); err == nil && sc == connB {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("patient never routed home after shard recovery")
		}
		time.Sleep(10 * time.Millisecond)
	}
	push(t, h, rec)
	awaitShardWindows(shardB2, 1, "post-recovery traffic to B")
}

// replicatedPair stands up a two-shard fleet with checkpoint
// replication enabled on both shards and a fast-failover router over
// them, and picks a patient rendezvous-homed on the second shard.
func replicatedPair(t *testing.T) (shardA, shardB *testShard, addrB string, r *Router, patient string) {
	t.Helper()
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrA, addrB := lnA.Addr().String(), lnB.Addr().String()
	fleet := []string{addrA, addrB}
	shardOpts := func(self string) Options {
		return Options{Replication: &ReplicationConfig{Self: self, Fleet: fleet, Replicas: 1}}
	}
	newShard := func(ln net.Listener, self string) *testShard {
		srv, err := serve.New(testServerConfig(), serve.WithEventBuffer(4096))
		if err != nil {
			t.Fatal(err)
		}
		return &testShard{srv: srv, ss: Serve(srv, ln, shardOpts(self))}
	}
	shardA = newShard(lnA, addrA)
	shardB = newShard(lnB, addrB)

	r, err = Dial(fleet, Options{
		PingInterval:     25 * time.Millisecond,
		PingTimeout:      150 * time.Millisecond,
		ReconnectBackoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	connB := r.shards[1]
	for i := 0; i < 1000 && patient == ""; i++ {
		p := fmt.Sprintf("patient-%03d", i)
		if sc, err := r.pick(p); err == nil && sc == connB {
			patient = p
		}
	}
	if patient == "" {
		t.Fatal("no patient rendezvous-routed to shard B")
	}
	return shardA, shardB, addrB, r, patient
}

// awaitModelVersion polls one shard's server until it serves the
// patient at least at version want.
func awaitModelVersion(t testing.TB, srv *serve.Server, patient string, want uint64, what string) uint64 {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, v := srv.ModelVersioned(patient); v >= want {
			return v
		}
		if time.Now().After(deadline) {
			_, v := srv.ModelVersioned(patient)
			t.Fatalf("%s: model version = %d, want ≥ %d", what, v, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFailoverWarmResume is the PR's acceptance scenario: with two
// shardds and checkpoint replication on, killing the patient's shard
// mid-replay must hand the surviving shard a patient who resumes WARM —
// the post-failover alarms are bit-identical to an uninterrupted
// single-process run that starts from the same checkpoint, at an
// equal-or-newer model version. Without replication this is exactly the
// cold-start the self-learning methodology exists to avoid: the
// survivor would classify everything negative until enough seizures
// re-trigger retraining.
func TestFailoverWarmResume(t *testing.T) {
	servetest.CheckGoroutines(t)
	shardA, shardB, _, r, patient := replicatedPair(t)
	defer shardA.stop()
	defer shardB.stop()
	defer r.Close()

	h, err := r.Open(patient)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: train the patient's detector on their home shard (B).
	push(t, h, testRecording(t, 21, 150, 80, 22))
	confirm(t, h)
	deadline := time.Now().Add(60 * time.Second)
	for shardB.srv.Snapshot().Retrains < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("retrain never completed: %+v", shardB.srv.Snapshot())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Replication must place the checkpoint on the failover target (A)
	// before the failure — that is the whole point.
	versionA := awaitModelVersion(t, shardA.srv, patient, 1, "replication to shard A")
	awaitRouterVersion := func(want uint64) {
		deadline := time.Now().Add(30 * time.Second)
		for r.ModelVersions()[patient] < want {
			if time.Now().After(deadline) {
				t.Fatalf("router never learned model version %d: %v", want, r.ModelVersions())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	awaitRouterVersion(versionA)
	if shardA.srv.Snapshot().Retrains != 0 {
		t.Fatalf("shard A retrained; replica provenance would be ambiguous: %+v", shardA.srv.Snapshot())
	}

	// The reference model is shard A's replica itself (it crossed the
	// wire as JSON), so the uninterrupted reference run classifies with
	// exactly the representation the failed-over patient will get.
	refModel, refVersion := shardA.srv.ModelVersioned(patient)
	if refModel == nil {
		t.Fatal("no replica on shard A")
	}

	// Phase 2: replay a fresh recording; kill B mid-replay, before the
	// seizure. The tail is served by A from a fresh session — which must
	// match an uninterrupted run over the same tail from the same
	// checkpoint, batch for batch.
	rec := testRecording(t, 22, 150, 100, 22)
	const killAt = 60 // seconds into the replay
	c0, c1 := rec.Data[0], rec.Data[1]
	pushSamples(t, h, c0[:killAt*testRate], c1[:killAt*testRate])
	shardB.stop()
	deadline = time.Now().Add(10 * time.Second)
	for {
		if sc, err := r.pick(patient); err == nil && sc != r.shards[1] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("patient never rerouted off the dead shard")
		}
		time.Sleep(10 * time.Millisecond)
	}
	pushSamples(t, h, c0[killAt*testRate:], c1[killAt*testRate:])

	// The tail spans 150−60 = 90 s: a fresh session completes its first
	// 4 s window after 4 s, then one per hop — 87 windows.
	wantWindows := uint64(150 - killAt - 4 + 1)
	deadline = time.Now().Add(60 * time.Second)
	for shardA.srv.Snapshot().Windows < wantWindows {
		if time.Now().After(deadline) {
			t.Fatalf("failover tail never drained on A: %+v", shardA.srv.Snapshot())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Uninterrupted reference: a fresh single-process server seeded with
	// the same checkpoint serves the identical tail.
	refSrv, err := serve.New(testServerConfig(), serve.WithEventBuffer(4096))
	if err != nil {
		t.Fatal(err)
	}
	defer refSrv.Close()
	if !refSrv.InstallModel(patient, refModel, refVersion) {
		t.Fatal("reference server refused the checkpoint")
	}
	refHandle, err := refSrv.Open(patient)
	if err != nil {
		t.Fatal(err)
	}
	pushSamples(t, refHandle, c0[killAt*testRate:], c1[killAt*testRate:])
	refSrv.Close()
	refStats := refSrv.Snapshot()

	aStats := shardA.srv.Snapshot()
	if refStats.Windows != wantWindows || aStats.Windows != wantWindows {
		t.Fatalf("windows: failover %d, reference %d, want %d", aStats.Windows, refStats.Windows, wantWindows)
	}
	if refStats.Alarms == 0 {
		t.Fatal("reference run raised no alarms; warm-resume equivalence would be vacuous")
	}
	if aStats.Alarms != refStats.Alarms {
		t.Fatalf("post-failover alarms = %d, uninterrupted reference = %d — failover was not warm",
			aStats.Alarms, refStats.Alarms)
	}
	// Warmth must come from replication, not from a retrain on A, and
	// the patient must resume at an equal-or-newer model version.
	if aStats.Retrains != 0 || aStats.Confirms != 0 {
		t.Fatalf("shard A trained (%d retrains, %d confirms); warmth is not replication's", aStats.Retrains, aStats.Confirms)
	}
	if _, v := shardA.srv.ModelVersioned(patient); v < refVersion {
		t.Fatalf("post-failover model version %d < pre-failover %d", v, refVersion)
	}
}

// TestRecoveryTransfersModelHome pins the router-mediated ModelGet
// fallback of the warm-transfer path: a shard that comes back empty
// (fresh process, no store) is handed the freshest surviving checkpoint
// when a patient routes home to it — pulled from whichever healthy
// shard still holds it, since the reborn home shard's replica died with
// the old process.
func TestRecoveryTransfersModelHome(t *testing.T) {
	shardA, shardB, addrB, r, patient := replicatedPair(t)
	defer shardA.stop()
	defer r.Close()

	h, err := r.Open(patient)
	if err != nil {
		t.Fatal(err)
	}
	// Train v1 on the home shard (B); replication copies it to A.
	push(t, h, testRecording(t, 31, 150, 80, 22))
	confirm(t, h)
	awaitModelVersion(t, shardB.srv, patient, 1, "home training")
	awaitModelVersion(t, shardA.srv, patient, 1, "replication to A")

	// Kill B; the patient fails over to A and retrains there, advancing
	// the model to v2 — a version the reborn B has never seen.
	shardB.stop()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if sc, err := r.pick(patient); err == nil && sc == r.shards[0] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("patient never rerouted off the dead shard")
		}
		time.Sleep(10 * time.Millisecond)
	}
	push(t, h, testRecording(t, 32, 150, 80, 22))
	confirm(t, h)
	v2 := awaitModelVersion(t, shardA.srv, patient, 2, "failover retrain on A")

	// Resurrect B empty on its old address. The patient routes home, and
	// the router must carry the freshest checkpoint (A's v2) with them:
	// B's own replica is gone, so this exercises the ModelGet sweep, not
	// the replica-first path.
	lnB, err := net.Listen("tcp", addrB)
	if err != nil {
		t.Fatal(err)
	}
	srvB2, err := serve.New(testServerConfig(), serve.WithEventBuffer(4096))
	if err != nil {
		t.Fatal(err)
	}
	shardB2 := &testShard{srv: srvB2, ss: Serve(srvB2, lnB, Options{})}
	defer shardB2.stop()
	deadline = time.Now().Add(10 * time.Second)
	for {
		if sc, err := r.pick(patient); err == nil && sc == r.shards[1] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("patient never routed home after shard recovery")
		}
		time.Sleep(10 * time.Millisecond)
	}
	rec := testRecording(t, 33, 30, -1, 0)
	push(t, h, rec)
	if v := awaitModelVersion(t, shardB2.srv, patient, v2, "transfer home"); v < v2 {
		t.Fatalf("reborn shard serves version %d, want ≥ %d", v, v2)
	}
	if st := shardB2.srv.Snapshot(); st.Retrains != 0 {
		t.Fatalf("reborn shard retrained (%d); the version must have come over the wire", st.Retrains)
	}
}

// TestRendezvousStability pins the routing properties failover depends
// on: deterministic assignment, movement limited to the failed shard's
// patients, and exact restoration on recovery.
func TestRendezvousStability(t *testing.T) {
	r := &Router{opts: Options{}.withDefaults()}
	for _, addr := range []string{"10.0.0.1:7461", "10.0.0.2:7461", "10.0.0.3:7461"} {
		sc := newShardConn(r, addr)
		sc.healthy.Store(true)
		r.shards = append(r.shards, sc)
	}
	const n = 300
	home := make(map[string]*shardConn, n)
	perShard := map[*shardConn]int{}
	for i := 0; i < n; i++ {
		p := fmt.Sprintf("patient-%04d", i)
		sc, err := r.pick(p)
		if err != nil {
			t.Fatal(err)
		}
		home[p] = sc
		perShard[sc]++
	}
	for _, sc := range r.shards {
		if perShard[sc] < n/6 {
			t.Fatalf("rendezvous is lopsided: %s owns %d of %d patients", sc.addr, perShard[sc], n)
		}
	}
	// Fail one shard: only its patients move, and all of them do.
	down := r.shards[1]
	down.healthy.Store(false)
	for p, h := range home {
		sc, err := r.pick(p)
		if err != nil {
			t.Fatal(err)
		}
		if h == down && sc == down {
			t.Fatalf("patient %s still routed to the down shard", p)
		}
		if h != down && sc != h {
			t.Fatalf("patient %s moved from %s to %s though their shard is healthy", p, h.addr, sc.addr)
		}
	}
	// Recovery restores the original assignment exactly.
	down.healthy.Store(true)
	for p, h := range home {
		if sc, _ := r.pick(p); sc != h {
			t.Fatalf("patient %s not routed home after recovery", p)
		}
	}
}

// TestClusterAdmissionSuite runs the shared transport admission suite
// against a cluster shard connection: the same drop/block/shed
// semantics the local worker queue proves, now on the client side of
// the wire. The connection is held pre-dial (healthy flag forced) so
// the suite owns the drain side.
func TestClusterAdmissionSuite(t *testing.T) {
	servetest.RunAdmissionSuite(t, func(t *testing.T, depth int) servetest.Harness {
		r := &Router{opts: Options{QueueDepth: depth}.withDefaults()}
		r.events = make(chan serve.Event, r.opts.EventBuffer)
		sc := newShardConn(r, "test:0")
		sc.healthy.Store(true)
		return servetest.Harness{
			Shard: sc,
			Drain: sc.queue.TryRecv,
		}
	})
}

// TestShardServerSurvivesClientChurn pins the disconnect race: client
// connections coming and going while the shard emits events must never
// crash the shard process. The original bug closed a connection's
// fanout channel before deregistering it, so a concurrent fanout send
// panicked shardd; connections now leave the fanout set first.
func TestShardServerSurvivesClientChurn(t *testing.T) {
	servetest.CheckGoroutines(t)
	ts := startShard(t, "127.0.0.1:0")
	defer ts.stop()

	// A resident client hammers Confirm so the shard broadcasts a steady
	// stream of retrain events into the fanout while churn runs.
	r, err := Dial([]string{ts.addr()}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	h, err := r.Open("resident")
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecording(t, 55, 60, 20, 15)
	push(t, h, rec)
	stopEmit := make(chan struct{})
	emitDone := make(chan struct{})
	go func() {
		defer close(emitDone)
		for {
			select {
			case <-stopEmit:
				return
			default:
				confirm(t, h) // each confirm → a retrain event broadcast
				// Throttle: unpaced confirms pile up in TCP buffers far
				// beyond the bounded queues (tiny frames, megabyte
				// windows) and the liveness check below would then wait
				// behind a minutes-long confirm backlog.
				time.Sleep(time.Millisecond)
			}
		}
	}()

	// Churn: connections that register with the fanout and vanish mid
	// event stream. Half die raw before the handshake, half right after
	// it — both shapes must deregister before their channel closes.
	for i := 0; i < 200; i++ {
		conn, err := net.Dial("tcp", ts.addr())
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			enc := wire.NewEncoder(conn)
			if err := enc.Hello(); err == nil {
				enc.Flush()
			}
		}
		time.Sleep(200 * time.Microsecond)
		conn.Close()
	}
	close(stopEmit)
	<-emitDone
	// The shard must still be alive and serving: a fresh push succeeds
	// and shows up in its stats.
	before := ts.srv.Snapshot().Windows
	push(t, h, rec)
	deadline := time.Now().Add(30 * time.Second)
	for ts.srv.Snapshot().Windows <= before {
		if time.Now().After(deadline) {
			t.Fatalf("shard stopped serving after client churn: %+v", ts.srv.Snapshot())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRouterValidation covers Dial's address hygiene and the
// empty-patient guard.
func TestRouterValidation(t *testing.T) {
	if _, err := Dial(nil, Options{}); err == nil {
		t.Fatal("Dial accepted an empty address list")
	}
	if _, err := Dial([]string{"a:1", "a:1"}, Options{}); err == nil {
		t.Fatal("Dial accepted duplicate addresses")
	}
	r, err := Dial([]string{"127.0.0.1:1"}, Options{ReconnectBackoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Open(""); err == nil {
		t.Fatal("Open accepted an empty patient ID")
	}
	// With no shard reachable, pushes surface the outage rather than
	// silently buffering forever.
	h, err := r.Open("p")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Push([]float64{0}, []float64{0}); err != ErrNoShards {
		t.Fatalf("Push with all shards down = %v, want ErrNoShards", err)
	}
}
