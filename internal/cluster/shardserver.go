package cluster

import (
	"bytes"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"selflearn/internal/ml/forest"
	"selflearn/internal/serve"
	"selflearn/internal/wire"
)

// ShardServer is the process side of a shard: it exposes one local
// serve.Server over the wire protocol so a Router can drive it from
// another process. cmd/shardd wraps it in a main; tests run it
// in-process on loopback listeners. The ShardServer is the sole
// consumer of its server's Events channel, fanning events out to every
// connected client without ever blocking the serving path.
//
// The ShardServer is also the shard's end of the model-distribution
// path: it answers ModelGet with the patient's current versioned
// checkpoint, installs checkpoints arriving via ModelPut (replication
// pushes from peers, failover transfers from routers), announces every
// model install to connected clients (ModelAnnounce), and — when
// Options.Replication is set — pushes each checkpoint save to the
// next-in-line shard under the patient's rendezvous order, so the shard
// a patient would fail over to already holds their detector.
//
// Lifetime: Serve starts the accept and fanout loops and returns.
// Close stops accepting and tears down client connections; the caller
// closes the serve.Server afterwards (that close also ends the fanout
// loop by closing the Events channel).
type ShardServer struct {
	srv  *serve.Server
	ln   net.Listener
	opts Options
	repl *replicator // nil without Options.Replication

	mu     sync.Mutex
	conns  map[*clientConn]struct{}
	closed bool
	wg     sync.WaitGroup

	// fanoutDropped counts events lost to a lagging client connection;
	// it is folded into the EventsDropped of every stats reply.
	fanoutDropped atomic.Uint64
}

// Serve starts a shard server for srv on ln and returns it. srv must
// not have another Events consumer. Zero-value opts select the same
// defaults as the Router's side of the protocol.
func Serve(srv *serve.Server, ln net.Listener, opts Options) *ShardServer {
	s := &ShardServer{srv: srv, ln: ln, opts: opts.withDefaults(), conns: make(map[*clientConn]struct{})}
	if s.opts.Replication != nil {
		s.repl = newReplicator(s, *s.opts.Replication)
	}
	go s.fanout()
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener address (useful with ":0" listeners).
func (s *ShardServer) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting, disconnects every client, stops the
// replicator, and waits for the connection handlers. The underlying
// serve.Server keeps running.
func (s *ShardServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]*clientConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.conn.Close()
	}
	if s.repl != nil {
		s.repl.close()
	}
	s.wg.Wait()
}

func (s *ShardServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		c := &clientConn{s: s, conn: conn, events: make(chan serve.Event, 1024), streams: make(map[string]*serve.Stream)}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go c.handle()
	}
}

// fanout is the single Events consumer, broadcasting to every client.
// Model updates — learner publishes and replica installs alike — also
// feed the replicator here: versions are monotonic and the replicator
// re-reads the latest checkpoint per push, so replaying or coalescing
// updates is harmless. It exits when the serve.Server closes its
// Events channel.
func (s *ShardServer) fanout() {
	for ev := range s.srv.Events() {
		if ev.Kind == serve.EventModelUpdated && s.repl != nil {
			s.repl.schedule(ev.Patient)
		}
		s.mu.Lock()
		for c := range s.conns {
			select {
			case c.events <- ev: //selflearn:locked-ok non-blocking send; s.mu orders fanout against dropConn's close(c.events)
			default:
				s.fanoutDropped.Add(1)
			}
		}
		s.mu.Unlock()
	}
}

func (s *ShardServer) dropConn(c *clientConn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// clientConn is one peer connection into this shard — a Router, or a
// peer shard's replicator: a read loop applying Push/Confirm to
// per-patient serve.Streams and ModelPut to the model cache, and an
// event writer draining the fanout buffer. Stats and model replies and
// pongs are written from the read loop; the write mutex keeps frames
// whole.
type clientConn struct {
	s    *ShardServer
	conn net.Conn

	writeMu sync.Mutex
	enc     *wire.Encoder

	events  chan serve.Event
	streams map[string]*serve.Stream
}

// stream lazily opens this connection's handle for a patient. Handles
// are per connection, so a reconnecting client gets fresh handles while
// the server-side sessions (and models) persist untouched.
func (c *clientConn) stream(patient string) (*serve.Stream, error) {
	if h, ok := c.streams[patient]; ok {
		return h, nil
	}
	h, err := c.s.srv.Open(patient)
	if err != nil {
		return nil, err
	}
	c.streams[patient] = h
	return h, nil
}

func (c *clientConn) handle() {
	defer c.s.wg.Done()
	defer c.conn.Close()
	var writerDone chan struct{}
	defer func() {
		// Deregister from fanout before closing the event channel:
		// dropConn takes s.mu, which fanout holds across its sends, so
		// once it returns no fanout iteration can still see this conn —
		// closing first would race fanout into a send on a closed
		// channel and panic the whole shard process.
		c.s.dropConn(c)
		close(c.events)
		if writerDone != nil {
			<-writerDone
		}
		for _, h := range c.streams {
			h.Close()
		}
	}()

	enc := wire.NewEncoder(c.conn)
	dec := wire.NewDecoder(c.conn)
	// Handshake mirrors the client: Hello both ways, any peer at
	// MinVersion or newer accepted, the effective version negotiated
	// down to the older side, bounded by the shared write deadline.
	c.conn.SetDeadline(time.Now().Add(c.s.opts.WriteDeadline))
	m, err := dec.Next()
	if err != nil || m.Kind != wire.KindHello || m.Version < wire.MinVersion {
		return
	}
	enc.SetVersion(m.Version)
	dec.SetVersion(m.Version)
	if err := enc.Hello(); err != nil {
		return
	}
	if err := enc.Flush(); err != nil {
		return
	}
	c.conn.SetDeadline(time.Time{})
	c.writeMu.Lock()
	c.enc = enc
	c.writeMu.Unlock()

	writerDone = make(chan struct{})
	go c.eventWriter(writerDone)

	for {
		// Arm the idle deadline only around waiting for the next frame:
		// a half-open peer (host gone, no FIN ever arrives) is reaped
		// after ReadIdleTimeout instead of pinning this goroutine and
		// its patient handles forever, while a frame stalled in apply's
		// backpressure loop — deliberate flow control — never trips it.
		// Any live router refreshes it every PingInterval.
		// (The deadline is re-armed per frame, and reads only happen
		// here, so an apply stall never sees a stale deadline fire.)
		c.conn.SetReadDeadline(time.Now().Add(c.s.opts.ReadIdleTimeout))
		m, err := dec.Next()
		if err != nil {
			return
		}
		switch m.Kind {
		case wire.KindPush, wire.KindPushQ:
			h, err := c.stream(m.Patient)
			if err != nil {
				return // server closed; connection is useless now
			}
			if !c.apply(func() error { return h.Push(m.C0, m.C1) }) {
				return
			}
		case wire.KindConfirm:
			h, err := c.stream(m.Patient)
			if err != nil {
				return
			}
			if !c.apply(h.Confirm) {
				return
			}
		case wire.KindPrefilterDecl:
			h, err := c.stream(m.Patient)
			if err != nil {
				return
			}
			if !c.apply(func() error { return h.DeclarePrefilter(m.Prefilter) }) {
				return
			}
		case wire.KindPushDigest:
			h, err := c.stream(m.Patient)
			if err != nil {
				return
			}
			if !c.apply(func() error { return h.PushDigest(m.Digest) }) {
				return
			}
		case wire.KindAuditPush:
			h, err := c.stream(m.Patient)
			if err != nil {
				return
			}
			if !c.apply(func() error { return h.PushAudit(m.C0, m.C1) }) {
				return
			}
		case wire.KindPing:
			if err := c.send(func(e *wire.Encoder) error { return e.Pong(m.Token) }); err != nil {
				return
			}
		case wire.KindStatsReq:
			st := c.s.srv.Snapshot()
			st.EventsDropped += c.s.fanoutDropped.Load()
			if err := c.send(func(e *wire.Encoder) error { return e.Stats(m.Token, st) }); err != nil {
				return
			}
		case wire.KindModelGet:
			v, data := c.s.modelCheckpoint(m.Patient)
			if err := c.send(func(e *wire.Encoder) error { return e.ModelPut(m.Token, m.Patient, v, data) }); err != nil {
				return
			}
		case wire.KindModelPut:
			// A replica pushed by a peer shard, or a failover transfer
			// from a router. Installing through the serve.Server keeps
			// the monotonic version guard and re-announces the install
			// (EventModelUpdated → fanout → ModelAnnounce), so routers
			// learn this shard now serves the patient at that version.
			// A payload that fails to parse is dropped — one bad frame
			// must cost the replica, not the connection's live streams.
			if m.ModelVersion > 0 && len(m.Model) > 0 {
				if f, err := forest.LoadFlat(bytes.NewReader(m.Model)); err == nil {
					c.s.srv.InstallModel(m.Patient, f, m.ModelVersion)
				}
			}
		}
	}
}

// modelCheckpoint marshals the patient's current model for the wire;
// (0, nil) when the patient has no model — or has one too large for a
// frame. The size check happens here, not at encode time, because an
// encoder refusal inside a reply would tear down a healthy connection
// and every live stream on it; an unreplicable model must degrade to
// "no model" (the patient fails over cold, as before replication).
func (s *ShardServer) modelCheckpoint(patient string) (uint64, []byte) {
	f, v := s.srv.ModelVersioned(patient)
	if f == nil || v == 0 {
		return 0, nil
	}
	data, err := f.MarshalJSON()
	if err != nil || len(data) > wire.MaxFrame-1024 {
		return 0, nil
	}
	return v, data
}

// apply runs one serving call, retrying on backpressure: stalling this
// connection's read loop is the cluster's flow control — the TCP
// window fills and the client's outbound queue (where the admission
// policy lives) takes over. Only a closed server gives up.
func (c *clientConn) apply(fn func() error) bool {
	for {
		err := fn()
		if err == nil {
			return true
		}
		if err != serve.ErrBackpressure {
			return false
		}
		time.Sleep(500 * time.Microsecond)
	}
}

// send runs one encode+flush under the write lock, bounded by the
// configured write deadline.
func (c *clientConn) send(f func(*wire.Encoder) error) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	c.conn.SetWriteDeadline(time.Now().Add(c.s.opts.WriteDeadline))
	if err := f(c.enc); err != nil { //selflearn:locked-ok writeMu IS the encoder serialization point; the write deadline bounds it
		return err
	}
	return c.enc.Flush()
}

// eventWriter drains this connection's fanout buffer onto the wire,
// flushing when the buffer goes idle. A model update is followed by a
// payload-free ModelAnnounce so the client's per-patient version table
// stays current even if it ignores the event stream.
func (c *clientConn) eventWriter(done chan struct{}) {
	defer close(done)
	for ev := range c.events {
		c.writeMu.Lock()
		c.conn.SetWriteDeadline(time.Now().Add(c.s.opts.WriteDeadline))
		var err error
		if ev.Kind == serve.EventAuditRequest {
			// Cross as the dedicated v5 frame so the router's read loop
			// resurfaces it uniformly with local mode. A pre-v5 peer
			// cannot have a declared prefilter to audit, so the gated
			// frame is simply skipped for it.
			if err = c.enc.AuditRequest(ev.Patient); err == wire.ErrVersionGated {
				err = nil
			}
		} else {
			err = c.enc.Event(ev)
		}
		if err == nil && ev.Kind == serve.EventModelUpdated {
			err = c.enc.ModelAnnounce(ev.Patient, ev.Version)
		}
		if err == nil && len(c.events) == 0 {
			err = c.enc.Flush()
		}
		c.writeMu.Unlock()
		if err != nil {
			// The read loop will notice the dead socket; keep draining so
			// fanout never blocks on this connection.
			for range c.events {
			}
			return
		}
	}
}
