// Package cluster is the cross-process serving transport: it runs the
// multi-patient workload of internal/serve across N shardd worker
// processes instead of N goroutines, behind the same ShardTransport
// seam the in-process worker pool implements.
//
// The Router owns one connection per shardd address. Patients map to
// backends by rendezvous (highest-random-weight) hashing over the
// currently healthy set, so losing one backend reroutes only that
// backend's patients and recovering it routes exactly those patients
// home again. Each connection runs a manage loop — dial, version
// handshake, ping health probe, teardown, reconnect with backoff — and
// drains a per-shard serve.Queue onto the socket, which is how the
// local admission policies (drop / block / shed) govern the client
// side of the wire byte-for-byte as they govern a worker queue.
//
// What crosses the wire is the transport Job stream in one direction
// (sample batches and confirmations, in per-patient order) and the
// merged observability stream in the other (alarm / retrain / eviction
// / shed events, plus stats snapshots on request). Per-patient
// determinism survives the split: one patient maps to one shardd, the
// socket preserves order, and the shardd side is a stock serve.Server —
// so cluster predictions are bit-identical to a single process serving
// the same batches (pinned by TestClusterMatchesSingleProcess).
package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"selflearn/internal/serve"
)

// ErrNoShards is returned when no healthy shard can take a patient —
// every configured backend is down or still connecting.
var ErrNoShards = errors.New("cluster: no healthy shards")

// ErrShardDown is returned by a shard handle whose backend connection
// is currently down; the stream re-resolves on the next push.
var ErrShardDown = errors.New("cluster: shard connection down")

// Options tune the cluster client. The zero value of every field
// selects a sensible default.
type Options struct {
	// QueueDepth bounds each shard's outbound queue (default 256) — the
	// queue the admission policy governs, exactly like a worker queue.
	QueueDepth int
	// Admission is the default policy on full outbound queues
	// (default serve.DropOnFull()). Streams may override per handle.
	Admission serve.AdmissionPolicy
	// DialTimeout bounds one connection attempt (default 3 s).
	DialTimeout time.Duration
	// PingInterval is the health-probe period (default 1 s);
	// PingTimeout is how stale the last pong may grow before the
	// connection is declared dead (default 3×PingInterval).
	PingInterval time.Duration
	PingTimeout  time.Duration
	// ReconnectBackoff is the initial retry delay after a failed dial,
	// doubling up to 8× (default 100 ms).
	ReconnectBackoff time.Duration
	// EventBuffer sizes the merged event channel (default 1024). A
	// consumer lagging this far behind loses events, counted in
	// Stats.EventsDropped.
	EventBuffer int
	// StatsTimeout bounds one backend's stats reply, and one model
	// request during a failover checkpoint transfer (default 2 s).
	StatsTimeout time.Duration
	// WriteDeadline bounds one socket write on both sides of the
	// protocol — every router frame batch, every shard reply and event
	// flush, and the server side of the handshake — so a peer that
	// stops reading cannot wedge a writer forever (default 10 s).
	WriteDeadline time.Duration
	// ReadIdleTimeout bounds how long a ShardServer waits for the next
	// frame from a connected client before reaping the connection
	// (default 2 m). A half-open client — peer host gone, no FIN ever
	// sent — would otherwise pin its handler goroutine and per-patient
	// stream handles forever. Routers ping every PingInterval, so any
	// live client refreshes the deadline orders of magnitude faster
	// than it expires. Read by ShardServer only.
	ReadIdleTimeout time.Duration
	// Dialer overrides how cluster connections are established, for
	// both the Router's shard connections and the shard-side
	// replicator's checkpoint pushes (default net.DialTimeout over
	// TCP). The fault-injection layer plugs in here: internal/fault's
	// Injector.Dial satisfies this signature and wraps every
	// connection in its fault plan.
	Dialer func(addr string, timeout time.Duration) (net.Conn, error)
	// Replication configures shard-side checkpoint replication; nil
	// disables it. Read by ShardServer only — routers ignore it.
	Replication *ReplicationConfig
}

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.Admission == nil {
		o.Admission = serve.DropOnFull()
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 3 * time.Second
	}
	if o.PingInterval <= 0 {
		o.PingInterval = time.Second
	}
	if o.PingTimeout <= 0 {
		o.PingTimeout = 3 * o.PingInterval
	}
	if o.ReconnectBackoff <= 0 {
		o.ReconnectBackoff = 100 * time.Millisecond
	}
	if o.EventBuffer <= 0 {
		o.EventBuffer = 1024
	}
	if o.StatsTimeout <= 0 {
		o.StatsTimeout = 2 * time.Second
	}
	if o.WriteDeadline <= 0 {
		o.WriteDeadline = 10 * time.Second
	}
	if o.ReadIdleTimeout <= 0 {
		o.ReadIdleTimeout = 2 * time.Minute
	}
	if o.Dialer == nil {
		o.Dialer = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	return o
}

// Router is the client side of cluster mode: it implements
// serve.ShardTransport over TCP connections to shardd processes and
// offers the same Open/Events/Snapshot/Close surface as a local
// serve.Server, so a replay harness drives either interchangeably.
type Router struct {
	opts   Options
	shards []*shardConn
	start  time.Time

	// epoch increments on every health transition; streams revalidate
	// their cached shard when it moves, which is how failover reroutes
	// live handles without a lock on the push path.
	epoch atomic.Uint64

	events        chan serve.Event
	eventSeq      atomic.Uint64
	eventsDropped atomic.Uint64

	// modelVersions is the router's view of each patient's latest model
	// version, fed by ModelAnnounce frames and EventModelUpdated events
	// from every connected shard. It is what failover compares against:
	// a re-resolved stream resumes only after its new shard serves at
	// least this version (replica-first, ModelGet fallback).
	modelMu       sync.Mutex
	modelVersions map[string]uint64

	mu     sync.RWMutex // guards closed against in-flight Open/Push
	closed bool

	// Client-side counters cover exactly what the shards cannot see:
	// admission refusals, jobs lost in transit, handle churn. Accepted
	// batches and confirms are counted where they are served — the
	// shard's Stats are authoritative and Snapshot sums them.
	streamsOpen      atomic.Int64
	batchesDropped   atomic.Uint64
	batchesShed      atomic.Uint64
	confirmsRejected atomic.Uint64
	confirmsDropped  atomic.Uint64
	statsToken       atomic.Uint64
}

// Dial starts a router over the given shardd addresses. Connections
// come up asynchronously — use WaitReady to block until the fleet is
// reachable. The address list is the shard identity space: rendezvous
// hashing runs over these strings, so keep them stable across restarts.
func Dial(addrs []string, opts Options) (*Router, error) {
	if len(addrs) == 0 {
		return nil, errors.New("cluster: no shard addresses")
	}
	seen := map[string]bool{}
	for _, a := range addrs {
		if a == "" {
			return nil, errors.New("cluster: empty shard address")
		}
		if seen[a] {
			return nil, fmt.Errorf("cluster: duplicate shard address %q", a)
		}
		seen[a] = true
	}
	r := &Router{opts: opts.withDefaults(), start: time.Now(), modelVersions: make(map[string]uint64)}
	r.events = make(chan serve.Event, r.opts.EventBuffer)
	r.shards = make([]*shardConn, len(addrs))
	for i, addr := range addrs {
		r.shards[i] = newShardConn(r, addr)
	}
	for _, sc := range r.shards {
		go sc.manage()
	}
	return r, nil
}

// WaitReady blocks until every shard connection is healthy, or fails
// after timeout naming the shards still down.
func (r *Router) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		var down []string
		for _, sc := range r.shards {
			if !sc.healthy.Load() {
				down = append(down, sc.addr)
			}
		}
		if len(down) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: shards unreachable after %v: %v", timeout, down)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// fnv64 is FNV-1a 64, inlined like the serve shard hash.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// rendezvousScore gives each (shard, patient) pair an independent
// uniform weight; the patient routes to the healthy shard with the
// highest. Removing a shard only moves its own patients (they fall to
// their second-highest weight); adding it back moves exactly those
// home. The two FNV hashes are combined through a splitmix64 finalizer:
// hashing the concatenation instead would leave scores for addresses
// differing in one byte strongly correlated — the same shard wins every
// patient and the "cluster" collapses onto one backend.
func rendezvousScore(addr, patient string) uint64 {
	x := fnv64(addr) ^ (fnv64(patient) * 0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// rendezvousLess is the one ordering rule both rankings share: higher
// score wins, ties (astronomically rare with 64-bit scores, but the
// replica placement and the routing MUST agree) break toward the
// lexically smaller address. replicator.target sorts the whole fleet
// with it; pick takes its argmax over the healthy subset.
func rendezvousLess(addrA string, scoreA uint64, addrB string, scoreB uint64) bool {
	if scoreA != scoreB {
		return scoreA > scoreB
	}
	return addrA < addrB
}

// pick resolves a patient to the healthy shard winning the rendezvous.
func (r *Router) pick(patient string) (*shardConn, error) {
	var best *shardConn
	var bestScore uint64
	for _, sc := range r.shards {
		if !sc.healthy.Load() {
			continue
		}
		score := rendezvousScore(sc.addr, patient)
		if best == nil || rendezvousLess(sc.addr, score, best.addr, bestScore) {
			best, bestScore = sc, score
		}
	}
	if best == nil {
		return nil, ErrNoShards
	}
	return best, nil
}

// Shard implements serve.ShardTransport.
func (r *Router) Shard(patientID string) (serve.Shard, error) {
	return r.pick(patientID)
}

// Depth implements serve.ShardTransport: jobs waiting in outbound
// queues on this client (remote queue depths appear in Snapshot).
func (r *Router) Depth() int {
	depth := 0
	for _, sc := range r.shards {
		depth += sc.queue.Depth()
	}
	return depth
}

// Events returns the merged event stream of every connected shard plus
// the client's own shed events, re-sequenced into one order. The
// channel closes after Close. Delivery is at-most-once: a lagging
// consumer or a dying connection loses events (counted in
// Stats.EventsDropped), so counters — not events — are the ledger.
func (r *Router) Events() <-chan serve.Event { return r.events }

// emit re-stamps and forwards one event without ever blocking a
// connection's read loop.
func (r *Router) emit(ev serve.Event) {
	ev.Seq = r.eventSeq.Add(1)
	select {
	case r.events <- ev:
	default:
		r.eventsDropped.Add(1)
	}
}

// noteModelVersion max-merges one shard's announced model version into
// the router's per-patient table.
func (r *Router) noteModelVersion(patient string, version uint64) {
	if patient == "" || version == 0 {
		return
	}
	r.modelMu.Lock()
	if version > r.modelVersions[patient] {
		r.modelVersions[patient] = version
	}
	r.modelMu.Unlock()
}

// ModelVersions snapshots the router's per-patient model version table:
// the latest version any connected shard has announced serving. A
// patient absent from the map has never had a model announced this
// session.
func (r *Router) ModelVersions() map[string]uint64 {
	r.modelMu.Lock()
	defer r.modelMu.Unlock()
	out := make(map[string]uint64, len(r.modelVersions))
	for p, v := range r.modelVersions {
		out[p] = v
	}
	return out
}

// warmTransfer moves a patient's latest checkpoint onto their new shard
// before the first post-failover batch, so the patient resumes at the
// same model version instead of cold. Replica-first: when shard-side
// replication already placed the checkpoint on the target (the normal
// case — the failover target is exactly the next-in-line shard replicas
// go to), the version probe confirms it and nothing is transferred.
// Otherwise the healthy fleet is swept for the freshest copy (ModelGet)
// and it is pushed to the target (ModelPut). Best-effort: a transfer
// that cannot complete leaves the patient serving at whatever the
// target has — exactly today's cold-failover behavior, never worse.
func (r *Router) warmTransfer(patient string, target *shardConn) {
	r.modelMu.Lock()
	want := r.modelVersions[patient]
	r.modelMu.Unlock()
	if want == 0 {
		return // never saw a model for this patient; nothing to move
	}
	timeout := r.opts.StatsTimeout
	have, _, err := target.modelGet(patient, timeout)
	if err == nil && have >= want {
		return // replica already in place at (at least) the wanted version
	}
	if err != nil {
		have = 0
	}
	// The fallback sweep runs under one total budget, not one timeout
	// per shard: resolve() — and the Push waiting behind it — is stalled
	// while this runs, and a large fleet of half-dead peers (reachable
	// but partitioned, so every modelGet times out) must not stack N
	// timeouts onto a patient's failover. When the budget runs out the
	// transfer fails open: the patient resumes at whatever the target
	// holds — locally-untrained serving at worst, never a stuck stream.
	sweepDeadline := time.Now().Add(2 * timeout)
	bestV, bestData := have, []byte(nil)
	for _, sc := range r.shards {
		if sc == target || !sc.healthy.Load() {
			continue
		}
		remaining := time.Until(sweepDeadline)
		if remaining <= 0 {
			break
		}
		v, data, err := sc.modelGet(patient, min(timeout, remaining))
		if err != nil || v <= bestV || len(data) == 0 {
			continue
		}
		bestV, bestData = v, data
	}
	if bestData == nil {
		return // no surviving shard holds anything fresher
	}
	target.modelPut(patient, bestV, bestData)
}

// lostJob accounts for an accepted job discarded in transit — cleared
// from a dead connection's queue or failed mid-write. Batches count as
// shed (the caller saw success; freshest-data-wins applies); lost
// confirmations count like learner-queue drops, the only loss class
// invisible to the caller.
func (r *Router) lostJob(j serve.Job) {
	if j.Confirm {
		r.confirmsDropped.Add(1)
		return
	}
	r.batchesShed.Add(1)
	if j.Stream != nil {
		j.Stream.NoteShed()
	}
	r.emit(serve.Event{Kind: serve.EventShed, Patient: j.Patient, Time: time.Now()})
}

// Snapshot merges the fleet's stats: every healthy shard is polled for
// its serve.Stats and the counters are summed, then the client-side
// view is layered in — outbound queue depth, admission drops, transit
// sheds, open handles, event-merge drops, and this client's uptime.
// Unreachable shards contribute nothing (their counters reappear when
// they do). Serving counters (Windows, Alarms, Confirms, Retrains…)
// are therefore authoritative from the shards; client counters cover
// exactly what shards cannot see.
func (r *Router) Snapshot() serve.Stats {
	// Poll the fleet concurrently: a stalled-but-not-yet-dead backend
	// costs one StatsTimeout total, not one per shard.
	replies := make([]*serve.Stats, len(r.shards))
	var wg sync.WaitGroup
	for i, sc := range r.shards {
		if !sc.healthy.Load() {
			continue
		}
		wg.Add(1)
		go func(i int, sc *shardConn) {
			defer wg.Done()
			if st, err := sc.stats(r.opts.StatsTimeout); err == nil {
				replies[i] = &st
			}
		}(i, sc)
	}
	wg.Wait()
	var agg serve.Stats
	for _, st := range replies {
		if st == nil {
			continue
		}
		agg.Sessions += st.Sessions
		agg.SessionsCreated += st.SessionsCreated
		agg.SessionsEvicted += st.SessionsEvicted
		agg.Batches += st.Batches
		agg.BatchesDropped += st.BatchesDropped
		agg.BatchesShed += st.BatchesShed
		agg.QualityRejected += st.QualityRejected
		agg.Windows += st.Windows
		agg.WindowsPerSec += st.WindowsPerSec
		agg.Alarms += st.Alarms
		agg.Confirms += st.Confirms
		agg.ConfirmsRejected += st.ConfirmsRejected
		agg.ConfirmsDropped += st.ConfirmsDropped
		agg.Retrains += st.Retrains
		agg.RetrainErrors += st.RetrainErrors
		agg.StreamErrors += st.StreamErrors
		agg.ModelsCached += st.ModelsCached
		agg.StoreErrors += st.StoreErrors
		agg.WindowsSuppressed += st.WindowsSuppressed
		agg.AuditSamples += st.AuditSamples
		agg.AuditDisagreements += st.AuditDisagreements
		agg.PrefilterDrift += st.PrefilterDrift
		agg.EventsDropped += st.EventsDropped
		agg.QueueDepth += st.QueueDepth
	}
	agg.StreamsOpen = int(r.streamsOpen.Load())
	agg.BatchesDropped += r.batchesDropped.Load()
	agg.BatchesShed += r.batchesShed.Load()
	agg.ConfirmsRejected += r.confirmsRejected.Load()
	agg.ConfirmsDropped += r.confirmsDropped.Load()
	agg.EventsDropped += r.eventsDropped.Load()
	agg.QueueDepth += r.Depth()
	agg.Uptime = time.Since(r.start)
	return agg
}

// UplinkBytes totals the framed job bytes (pushes, digests, audit
// samples, confirms, prefilter declarations — not pings or stats
// traffic) this router has put on the wire across every shard
// connection. With a prefiltering client it is the numerator of the
// uplink-reduction ratio; the same stream without a prefilter is the
// denominator.
func (r *Router) UplinkBytes() uint64 {
	var n uint64
	for _, sc := range r.shards {
		n += sc.uplinkBytes.Load()
	}
	return n
}

// SupportsPrefilter reports whether every currently-healthy shard
// negotiated protocol v5 or newer — the condition under which a client
// may run its stage-1 prefilter against this fleet. Against a mixed or
// older fleet the client should stream at full rate: the gated frames
// would be silently dropped toward old shards, losing the digests'
// accounting without telling the edge.
func (r *Router) SupportsPrefilter() bool {
	any := false
	for _, sc := range r.shards {
		if !sc.healthy.Load() {
			continue
		}
		any = true
		if sc.version.Load() < 5 {
			return false
		}
	}
	return any
}

// Close implements serve.ShardTransport: tears down every connection,
// discards queued jobs (counted), and closes the merged event channel.
// Open and Push fail with serve.ErrClosed afterwards. Idempotent.
func (r *Router) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	for _, sc := range r.shards {
		sc.stopOnce.Do(func() { close(sc.stop) })
	}
	for _, sc := range r.shards {
		<-sc.done
	}
	close(r.events)
}

// Stream is a per-patient cluster session handle with the same
// contract as serve.Stream: Push and Confirm enqueue toward the
// patient's shard under the stream's admission policy, and per-stream
// counters attribute outcomes. The shard is resolved through the
// rendezvous router and cached; a health transition anywhere in the
// fleet revalidates the cache on the next push, which is how failover
// happens mid-stream.
type Stream struct {
	r       *Router
	patient string
	adm     serve.AdmissionPolicy
	closed  atomic.Bool

	resolveMu sync.Mutex
	shard     *shardConn
	epoch     uint64

	batches  atomic.Uint64
	dropped  atomic.Uint64
	shed     atomic.Uint64
	confirms atomic.Uint64
}

// Open returns a handle for streaming patientID's samples to its
// shard. Opening succeeds even while every backend is down — pushes
// report the outage — so gateways can open ahead of connectivity.
func (r *Router) Open(patientID string) (*Stream, error) {
	if patientID == "" {
		return nil, errors.New("cluster: empty patient ID")
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return nil, serve.ErrClosed
	}
	r.streamsOpen.Add(1)
	return &Stream{r: r, patient: patientID, adm: r.opts.Admission}, nil
}

// Patient returns the stream's patient ID.
func (st *Stream) Patient() string { return st.patient }

// NoteShed implements serve.StreamObserver: a queued batch of this
// stream's was discarded (admission shedding or a dying connection).
func (st *Stream) NoteShed() { st.shed.Add(1) }

// NoteWindows implements serve.StreamObserver; remote processing
// reports windows via events and stats, so this is never called.
func (st *Stream) NoteWindows(int) {}

// NoteAlarms implements serve.StreamObserver; see NoteWindows.
func (st *Stream) NoteAlarms(int) {}

// NoteRejected implements serve.StreamObserver; quality rejections
// happen shardd-side and arrive as EventQualityReject events.
func (st *Stream) NoteRejected() {}

// resolve returns the stream's shard, re-running the rendezvous when
// the fleet's health epoch moved or the cached shard went down. A
// resolution that moves the stream to a different shard — failover, or
// routing home after recovery — first transfers the patient's latest
// checkpoint to the new shard (warmTransfer), so the batches that
// follow are classified at the same model version as before the move.
// The transfer completes (its frames are flushed on the new shard's
// socket, and the shard's serial read loop installs the model) before
// this stream's next Push can reach that socket, because both are
// ordered behind resolveMu here.
func (st *Stream) resolve() (*shardConn, error) {
	ep := st.r.epoch.Load()
	st.resolveMu.Lock()
	defer st.resolveMu.Unlock()
	if st.shard != nil && st.epoch == ep && st.shard.healthy.Load() {
		return st.shard, nil
	}
	sc, err := st.r.pick(st.patient)
	if err != nil {
		return nil, err
	}
	if st.shard != nil && sc != st.shard {
		st.r.warmTransfer(st.patient, sc) //selflearn:locked-ok resolveMu orders the transfer ahead of this stream's next Push, per the doc comment
	}
	st.shard, st.epoch = sc, ep
	return sc, nil
}

// enqueue routes one job with serve.Stream's counter semantics. A
// shard that dropped dead between resolve and enqueue is retried once
// against the re-resolved fleet.
func (st *Stream) enqueue(j serve.Job) error {
	st.r.mu.RLock()
	defer st.r.mu.RUnlock()
	if st.r.closed {
		return serve.ErrClosed
	}
	var err error
	for attempt := 0; attempt < 2; attempt++ {
		var sc *shardConn
		if sc, err = st.resolve(); err != nil { //selflearn:locked-ok the router read lock is the closed handshake; Close takes the write lock
			break
		}
		if err = sc.Enqueue(st.adm, j); err != ErrShardDown { //selflearn:locked-ok same closed handshake; the queue offer is bounded, not a blocking send
			break
		}
	}
	switch {
	case err == nil && j.Confirm:
		st.confirms.Add(1)
	case err == nil && j.Declare != nil:
		// Declarations are control traffic, not batches.
	case err == nil:
		st.batches.Add(1)
	case j.Confirm:
		st.r.confirmsRejected.Add(1)
	default:
		st.dropped.Add(1)
		st.r.batchesDropped.Add(1)
	}
	return err
}

// Push enqueues one batch of synchronized two-channel samples toward
// the patient's shard. It returns serve.ErrBackpressure when the
// stream's admission policy gives up on a full outbound queue,
// ErrShardDown/ErrNoShards during an outage (the caller owns the
// retry, exactly as with backpressure), and serve.ErrClosed /
// serve.ErrStreamClosed after Close. The router takes ownership of the
// slices.
func (st *Stream) Push(c0, c1 []float64) error {
	if st.closed.Load() {
		return serve.ErrStreamClosed
	}
	if len(c0) != len(c1) {
		return fmt.Errorf("cluster: channel length mismatch %d vs %d", len(c0), len(c1))
	}
	if len(c0) == 0 {
		return nil
	}
	// Cheap overload path, mirroring serve.Stream.Push: a policy that
	// would certainly refuse gets to say so before the job is built.
	if sc, err := st.resolve(); err == nil && sc.Congested(st.adm) {
		st.dropped.Add(1)
		st.r.batchesDropped.Add(1)
		return serve.ErrBackpressure
	}
	return st.enqueue(serve.Job{Patient: st.patient, Stream: st, C0: c0, C1: c1})
}

// DeclarePrefilter announces the stream's client-side stage-1
// prefilter to the patient's shard, mirroring serve.Stream: the shard
// arms its audit mirror from the declaration. Effective only against a
// v5 fleet (check Router.SupportsPrefilter first); toward an older
// shard the frame is silently skipped on the wire.
func (st *Stream) DeclarePrefilter(cfg serve.PrefilterConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if st.closed.Load() {
		return serve.ErrStreamClosed
	}
	c := cfg
	return st.enqueue(serve.Job{Patient: st.patient, Stream: st, Declare: &c})
}

// PushDigest reports a span of suppressed windows to the patient's
// shard, mirroring serve.Stream.PushDigest. Empty digests are accepted
// and ignored.
func (st *Stream) PushDigest(d serve.Digest) error {
	if d.Windows == 0 {
		return nil
	}
	if st.closed.Load() {
		return serve.ErrStreamClosed
	}
	dd := d
	return st.enqueue(serve.Job{Patient: st.patient, Stream: st, Digest: &dd})
}

// PushAudit ships one suppressed window's full samples for shard-side
// stage-2 audit replay, mirroring serve.Stream.PushAudit. The router
// takes ownership of the slices.
func (st *Stream) PushAudit(c0, c1 []float64) error {
	if st.closed.Load() {
		return serve.ErrStreamClosed
	}
	if len(c0) != len(c1) {
		return fmt.Errorf("cluster: channel length mismatch %d vs %d", len(c0), len(c1))
	}
	if len(c0) == 0 {
		return nil
	}
	return st.enqueue(serve.Job{Patient: st.patient, Stream: st, C0: c0, C1: c1, Audit: true})
}

// Confirm reports the patient's seizure confirmation to their shard,
// where it schedules a-posteriori labeling and retraining.
func (st *Stream) Confirm() error {
	if st.closed.Load() {
		return serve.ErrStreamClosed
	}
	return st.enqueue(serve.Job{Patient: st.patient, Stream: st, Confirm: true})
}

// Stats snapshots this handle's client-side counters. Windows and
// Alarms are served remotely and arrive via events and Snapshot, so
// they read 0 here.
func (st *Stream) Stats() serve.StreamStats {
	return serve.StreamStats{
		Patient:        st.patient,
		Batches:        st.batches.Load(),
		BatchesDropped: st.dropped.Load(),
		BatchesShed:    st.shed.Load(),
		Confirms:       st.confirms.Load(),
	}
}

// Close invalidates the handle; queued batches still flow. Idempotent.
func (st *Stream) Close() {
	if !st.closed.Swap(true) {
		st.r.streamsOpen.Add(-1)
	}
}
