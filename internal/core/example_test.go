package core_test

import (
	"fmt"
	"math/rand"

	"selflearn/internal/core"
)

// ExampleLabel demonstrates Algorithm 1 on a toy feature matrix: 200
// one-feature points of unit noise with a shifted block of 20 points
// starting at index 80. The argmax of the distance curve recovers the
// block position.
func ExampleLabel() {
	rng := rand.New(rand.NewSource(1))
	X := make([][]float64, 200)
	for i := range X {
		v := rng.NormFloat64()
		if i >= 80 && i < 100 {
			v += 5 // the "seizure"
		}
		X[i] = []float64{v}
	}
	res, err := core.Label(X, 20)
	if err != nil {
		panic(err)
	}
	fmt.Printf("label starts at point %d (true start 80)\n", res.Index)
	// Output:
	// label starts at point 80 (true start 80)
}

// ExampleLabelK finds two separate events in one buffer.
func ExampleLabelK() {
	rng := rand.New(rand.NewSource(2))
	X := make([][]float64, 400)
	for i := range X {
		v := rng.NormFloat64()
		if (i >= 100 && i < 130) || (i >= 300 && i < 330) {
			v += 5
		}
		X[i] = []float64{v}
	}
	results, err := core.LabelK(X, 30, 2, 0.5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("found %d events\n", len(results))
	// Output:
	// found 2 events
}
