// Package core implements the paper's primary contribution: the
// minimally-supervised algorithm for a-posteriori epileptic seizure
// labeling at the edge device (Algorithm 1).
//
// Given the feature matrix X[L][F] of a recording that is known to
// contain exactly one seizure (the patient's button press provides that
// bit of supervision) and the patient's average seizure length W (in
// feature points, provided once by a medical expert), the algorithm
// slides a window of length W over the signal and scores each position by
// the summed per-feature L1 distance between the points inside the
// window and every fourth point outside it, reduced across features by
// the Euclidean norm. The window with the maximum distance is labeled as
// the seizure.
//
// Two implementations are provided:
//
//   - LabelNaive follows the pseudocode literally and costs O(L²·W·F/4);
//     it is the executable specification.
//   - Label returns bit-identical distances up to floating-point
//     reassociation in O(L·W·F) using running prefix sums and an
//     incrementally-maintained in-window correction term; this is the
//     form that runs within the paper's "one second of signal per second
//     of compute" envelope on a Cortex-M3-class device.
//
// One intentional deviation from the pseudocode: the exclusion interval
// for "outside" points is the half-open [i, i+W), matching the set of
// points inside the window, where the pseudocode excludes the closed
// [i, i+W]. The distance this contributes is one extra point in ~L/4 and
// does not change the argmax in practice; using the same convention for
// both sets keeps the two implementations exactly comparable.
package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"selflearn/internal/features"
	"selflearn/internal/signal"
	"selflearn/internal/stats"
)

// Stride is the subsampling step for outside-window points. The 75 %
// window overlap of the feature extractor means consecutive feature
// points share three quarters of their samples; taking every fourth
// point avoids that redundancy and cuts the constant factor by 4
// (Algorithm 1, Line 5).
const Stride = 4

// Result is the outcome of a-posteriori labeling.
type Result struct {
	// Index is y, the feature-point index of the window with maximum
	// distance.
	Index int
	// Window is W, the label length in feature points.
	Window int
	// Distances is the full distance curve, one value per candidate
	// window position (length L−W+1).
	Distances []float64
}

// Label runs the fast exact variant of Algorithm 1 on feature matrix X
// with window length W (both in feature points).
func Label(X [][]float64, w int) (*Result, error) {
	if err := validate(X, w); err != nil {
		return nil, err
	}
	l := len(X)
	f := len(X[0])
	cols := normalizedColumns(X)
	nPos := l - w + 1
	// Normalization constant from the pseudocode: (L−W)/Stride outside
	// points per inside point.
	outNorm := float64(l-w) / Stride

	distances := make([]float64, nPos)
	perFeature := make([]float64, nPos) // scratch, reused per feature
	for fi := 0; fi < f; fi++ {
		col := cols[fi]
		featureDistances(col, w, perFeature)
		for i := range perFeature {
			v := perFeature[i] / (outNorm * float64(w))
			distances[i] += v * v
		}
	}
	for i := range distances {
		distances[i] = math.Sqrt(distances[i])
	}
	best := stats.ArgMax(distances)
	return &Result{Index: best, Window: w, Distances: distances}, nil
}

// featureDistances fills out[i] with
//
//	Σ_{p∈[i,i+w)} Σ_{k∈S, k∉[i,i+w)} |col[p] − col[k]|
//
// for every window position i, where S = {0, Stride, 2·Stride, …}. It
// decomposes the double sum into a global term computable by prefix sums
// over sorted stride points and an in-window correction maintained
// incrementally as the window slides.
func featureDistances(col []float64, w int, out []float64) {
	l := len(col)
	// Sorted stride-point values with prefix sums: g(a) = Σ_{k∈S}|a−s_k|
	// in O(log |S|).
	var strideVals []float64
	for k := 0; k < l; k += Stride {
		strideVals = append(strideVals, col[k])
	}
	sorted := append([]float64(nil), strideVals...)
	insertionSortOrStd(sorted)
	prefix := make([]float64, len(sorted)+1)
	for i, v := range sorted {
		prefix[i+1] = prefix[i] + v
	}
	g := func(a float64) float64 {
		// Number of stride values <= a.
		lo, hi := 0, len(sorted)
		for lo < hi {
			mid := (lo + hi) / 2
			if sorted[mid] <= a {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		nLe := lo
		sumLe := prefix[nLe]
		sumGt := prefix[len(sorted)] - sumLe
		return a*float64(nLe) - sumLe + (sumGt - a*float64(len(sorted)-nLe))
	}
	// gRow[p] = Σ_{k∈S} |col[p] − col[k]| for every point p, plus a
	// running prefix sum over p for O(1) window sums.
	gPrefix := make([]float64, l+1)
	for p := 0; p < l; p++ {
		gPrefix[p+1] = gPrefix[p] + g(col[p])
	}
	// corr(i) = Σ_{p∈[i,i+w)} Σ_{k∈S∩[i,i+w)} |col[p]−col[k]|,
	// maintained incrementally. Initialize for i = 0.
	corr := 0.0
	for p := 0; p < w; p++ {
		for k := 0; k < w; k += Stride {
			corr += math.Abs(col[p] - col[k])
		}
	}
	inStride := func(k int) bool { return k%Stride == 0 }
	for i := 0; ; i++ {
		out[i] = gPrefix[i+w] - gPrefix[i] - corr
		if i+w >= l {
			break
		}
		// Slide to i+1: remove row p=i, add row p=i+w; stride set loses
		// k=i (if k≡0 mod Stride) and gains k=i+w (likewise).
		// Order matters: remove contributions against the *current*
		// stride set, then update the stride membership, then add the
		// new row against the *new* stride set.
		for k := strideCeil(i); k < i+w; k += Stride {
			corr -= math.Abs(col[i] - col[k])
		}
		if inStride(i) {
			// Remove k=i against remaining rows (i+1 .. i+w-1); the
			// (p=i, k=i) pair was already removed above (it is zero
			// anyway, |col[i]-col[i]|).
			for p := i + 1; p < i+w; p++ {
				corr -= math.Abs(col[p] - col[i])
			}
		}
		if inStride(i + w) {
			// Add k=i+w against rows (i+1 .. i+w-1); row i+w itself is
			// added below.
			for p := i + 1; p < i+w; p++ {
				corr += math.Abs(col[p] - col[i+w])
			}
		}
		for k := strideCeil(i + 1); k <= i+w; k += Stride {
			if k < i+1 {
				continue
			}
			corr += math.Abs(col[i+w] - col[k])
		}
	}
}

// strideCeil returns the smallest multiple of Stride >= i.
func strideCeil(i int) int {
	r := i % Stride
	if r == 0 {
		return i
	}
	return i + Stride - r
}

// insertionSortOrStd sorts in place; the indirection exists so the hot
// path avoids importing sort for tiny inputs. It falls back to a simple
// bottom-up merge for larger ones.
func insertionSortOrStd(xs []float64) {
	if len(xs) <= 32 {
		for i := 1; i < len(xs); i++ {
			v := xs[i]
			j := i - 1
			for j >= 0 && xs[j] > v {
				xs[j+1] = xs[j]
				j--
			}
			xs[j+1] = v
		}
		return
	}
	buf := make([]float64, len(xs))
	for width := 1; width < len(xs); width *= 2 {
		for lo := 0; lo < len(xs); lo += 2 * width {
			mid := minInt(lo+width, len(xs))
			hi := minInt(lo+2*width, len(xs))
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				if xs[i] <= xs[j] {
					buf[k] = xs[i]
					i++
				} else {
					buf[k] = xs[j]
					j++
				}
				k++
			}
			for i < mid {
				buf[k] = xs[i]
				i++
				k++
			}
			for j < hi {
				buf[k] = xs[j]
				j++
				k++
			}
		}
		copy(xs, buf)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// LabelNaive runs Algorithm 1 exactly as written in the paper's
// pseudocode (with the half-open exclusion interval documented above).
// It is quadratic in the signal length and exists as the executable
// specification against which Label is property-tested.
func LabelNaive(X [][]float64, w int) (*Result, error) {
	if err := validate(X, w); err != nil {
		return nil, err
	}
	l := len(X)
	f := len(X[0])
	cols := normalizedColumns(X)
	outNorm := float64(l-w) / Stride
	nPos := l - w + 1
	distances := make([]float64, nPos)
	distanceVector := make([]float64, f)
	edge := make([]float64, f)
	for i := 0; i < nPos; i++ {
		for fi := range distanceVector {
			distanceVector[fi] = 0
		}
		for wi := 0; wi < w; wi++ {
			for fi := range edge {
				edge[fi] = 0
			}
			for k := 0; k < l; k += Stride {
				if k >= i && k < i+w {
					continue // inside the window
				}
				for fi := 0; fi < f; fi++ {
					edge[fi] += math.Abs(cols[fi][i+wi] - cols[fi][k])
				}
			}
			for fi := 0; fi < f; fi++ {
				distanceVector[fi] += edge[fi] / outNorm
			}
		}
		var norm float64
		for fi := 0; fi < f; fi++ {
			v := distanceVector[fi] / float64(w)
			norm += v * v
		}
		distances[i] = math.Sqrt(norm)
	}
	best := stats.ArgMax(distances)
	return &Result{Index: best, Window: w, Distances: distances}, nil
}

func validate(X [][]float64, w int) error {
	if len(X) == 0 {
		return errors.New("core: empty feature matrix")
	}
	f := len(X[0])
	if f == 0 {
		return errors.New("core: feature matrix has no features")
	}
	for i, row := range X {
		if len(row) != f {
			return fmt.Errorf("core: ragged feature matrix at row %d", i)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("core: non-finite feature value at row %d column %d", i, j)
			}
		}
	}
	if w < 1 {
		return fmt.Errorf("core: window length %d must be positive", w)
	}
	if w >= len(X) {
		return fmt.Errorf("core: window length %d must be smaller than signal length %d", w, len(X))
	}
	return nil
}

// normalizedColumns z-scores each feature column (Algorithm 1, Line 1)
// into a column-major copy.
func normalizedColumns(X [][]float64) [][]float64 {
	l, f := len(X), len(X[0])
	cols := make([][]float64, f)
	for fi := 0; fi < f; fi++ {
		col := make([]float64, l)
		for i := range X {
			col[i] = X[i][fi]
		}
		stats.ZScoreInPlace(col)
		cols[fi] = col
	}
	return cols
}

// LabelMatrix applies Label to an extracted feature matrix. avgSeizure is
// the patient's average seizure duration (the medical-expert input); it
// is converted to feature points via the matrix hop. The returned
// interval is the seizure label [y, y+W] in seconds from the start of the
// matrix.
func LabelMatrix(m *features.Matrix, avgSeizure time.Duration) (signal.Interval, *Result, error) {
	if m == nil || m.NumRows() == 0 {
		return signal.Interval{}, nil, errors.New("core: empty feature matrix")
	}
	hop := m.Window.Hop().Seconds()
	w := int(math.Round(avgSeizure.Seconds() / hop))
	if w < 1 {
		return signal.Interval{}, nil, fmt.Errorf("core: average seizure duration %v shorter than one hop %gs", avgSeizure, hop)
	}
	res, err := Label(m.Rows, w)
	if err != nil {
		return signal.Interval{}, nil, err
	}
	start := m.TimeOf(res.Index)
	return signal.Interval{Start: start, End: start + float64(w)*hop}, res, nil
}
