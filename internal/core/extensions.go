package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"selflearn/internal/stats"
)

// LabelK extends Algorithm 1 to recordings that may contain up to k
// seizures (the paper assumes exactly one per patient report, and notes
// the general case as an extension): it computes the distance curve once,
// then greedily picks the k highest non-overlapping windows whose
// distance stays above minRelative times the global maximum. Candidates
// are returned in descending distance order.
func LabelK(X [][]float64, w, k int, minRelative float64) ([]Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: invalid candidate count %d", k)
	}
	if minRelative < 0 || minRelative > 1 {
		return nil, fmt.Errorf("core: invalid relative threshold %g", minRelative)
	}
	base, err := Label(X, w)
	if err != nil {
		return nil, err
	}
	taken := make([]bool, len(base.Distances))
	peak := base.Distances[base.Index]
	var out []Result
	for len(out) < k {
		best, bestD := -1, 0.0
		for i, d := range base.Distances {
			if taken[i] {
				continue
			}
			if best == -1 || d > bestD {
				best, bestD = i, d
			}
		}
		if best == -1 || bestD < minRelative*peak {
			break
		}
		out = append(out, Result{Index: best, Window: w, Distances: base.Distances})
		// Mask positions whose window overlaps the chosen one.
		lo := best - w + 1
		if lo < 0 {
			lo = 0
		}
		hi := best + w
		if hi > len(taken) {
			hi = len(taken)
		}
		for i := lo; i < hi; i++ {
			taken[i] = true
		}
	}
	return out, nil
}

// LabelParallel computes the same result as Label with the per-feature
// distance scans fanned out across CPU cores. It exists for the offline
// analysis path (a clinician's workstation batch-labeling a large
// archive); the on-device port is single-core.
func LabelParallel(X [][]float64, w int) (*Result, error) {
	if err := validate(X, w); err != nil {
		return nil, err
	}
	l := len(X)
	f := len(X[0])
	cols := normalizedColumns(X)
	nPos := l - w + 1
	outNorm := float64(l-w) / Stride

	perFeature := make([][]float64, f)
	workers := runtime.GOMAXPROCS(0)
	if workers > f {
		workers = f
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for fi := range jobs {
				buf := make([]float64, nPos)
				featureDistances(cols[fi], w, buf)
				perFeature[fi] = buf
			}
		}()
	}
	for fi := 0; fi < f; fi++ {
		jobs <- fi
	}
	close(jobs)
	wg.Wait()

	distances := make([]float64, nPos)
	for fi := 0; fi < f; fi++ {
		for i, v := range perFeature[fi] {
			s := v / (outNorm * float64(w))
			distances[i] += s * s
		}
	}
	for i := range distances {
		distances[i] = math.Sqrt(distances[i])
	}
	best := stats.ArgMax(distances)
	return &Result{Index: best, Window: w, Distances: distances}, nil
}
