package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"selflearn/internal/chbmit"
	"selflearn/internal/features"
)

// matrixWithBlock builds an L×F noise matrix with a shifted block of
// length w starting at pos.
func matrixWithBlock(seed int64, l, f, pos, w int, shift float64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, l)
	for i := range X {
		row := make([]float64, f)
		for j := range row {
			row[j] = rng.NormFloat64()
			if i >= pos && i < pos+w {
				row[j] += shift
			}
		}
		X[i] = row
	}
	return X
}

func TestLabelFindsShiftedBlock(t *testing.T) {
	X := matrixWithBlock(1, 400, 5, 150, 40, 4)
	res, err := Label(X, 40)
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Index - 150; d < -3 || d > 3 {
		t.Errorf("detected at %d, want ≈150", res.Index)
	}
	if len(res.Distances) != 400-40+1 {
		t.Errorf("distance curve length %d, want %d", len(res.Distances), 361)
	}
	if res.Window != 40 {
		t.Errorf("Window = %d", res.Window)
	}
}

func TestLabelNaiveFindsShiftedBlock(t *testing.T) {
	X := matrixWithBlock(2, 200, 3, 60, 30, 4)
	res, err := LabelNaive(X, 30)
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Index - 60; d < -3 || d > 3 {
		t.Errorf("detected at %d, want ≈60", res.Index)
	}
}

func TestFastMatchesNaiveExactly(t *testing.T) {
	for _, tc := range []struct{ l, f, w int }{
		{50, 1, 5}, {80, 3, 10}, {120, 2, 31}, {60, 4, 59}, {64, 2, 8},
	} {
		X := matrixWithBlock(int64(tc.l), tc.l, tc.f, tc.l/3, tc.w, 2)
		fast, err := Label(X, tc.w)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := LabelNaive(X, tc.w)
		if err != nil {
			t.Fatal(err)
		}
		if fast.Index != naive.Index {
			t.Errorf("l=%d f=%d w=%d: fast argmax %d != naive %d", tc.l, tc.f, tc.w, fast.Index, naive.Index)
		}
		for i := range naive.Distances {
			diff := math.Abs(fast.Distances[i] - naive.Distances[i])
			scale := math.Max(1, math.Abs(naive.Distances[i]))
			if diff > 1e-9*scale {
				t.Fatalf("l=%d f=%d w=%d: distance[%d] fast %.15g vs naive %.15g",
					tc.l, tc.f, tc.w, i, fast.Distances[i], naive.Distances[i])
			}
		}
	}
}

func TestFastMatchesNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := 30 + rng.Intn(80)
		nf := 1 + rng.Intn(4)
		w := 2 + rng.Intn(l/2)
		X := make([][]float64, l)
		for i := range X {
			row := make([]float64, nf)
			for j := range row {
				row[j] = rng.NormFloat64() * float64(1+rng.Intn(5))
			}
			X[i] = row
		}
		fast, err1 := Label(X, w)
		naive, err2 := LabelNaive(X, w)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range naive.Distances {
			diff := math.Abs(fast.Distances[i] - naive.Distances[i])
			if diff > 1e-8*math.Max(1, math.Abs(naive.Distances[i])) {
				return false
			}
		}
		if fast.Index == naive.Index {
			return true
		}
		// On featureless noise two window positions can tie to within
		// floating-point reassociation error; the implementations may
		// then pick either. The property is that both picks are maximal
		// to within tolerance.
		a := naive.Distances[naive.Index]
		b := naive.Distances[fast.Index]
		return math.Abs(a-b) <= 1e-8*math.Max(1, math.Abs(a))
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Label(nil, 5); err == nil {
		t.Error("empty matrix should fail")
	}
	if _, err := Label([][]float64{{}, {}}, 1); err == nil {
		t.Error("zero features should fail")
	}
	if _, err := Label([][]float64{{1}, {1, 2}}, 1); err == nil {
		t.Error("ragged matrix should fail")
	}
	X := matrixWithBlock(3, 50, 2, 10, 5, 1)
	if _, err := Label(X, 0); err == nil {
		t.Error("w=0 should fail")
	}
	if _, err := Label(X, 50); err == nil {
		t.Error("w=L should fail")
	}
	X[3][1] = math.NaN()
	if _, err := Label(X, 5); err == nil {
		t.Error("NaN should fail")
	}
	X[3][1] = math.Inf(1)
	if _, err := Label(X, 5); err == nil {
		t.Error("Inf should fail")
	}
	// Same checks on the naive path.
	if _, err := LabelNaive(nil, 5); err == nil {
		t.Error("naive empty matrix should fail")
	}
}

func TestScaleInvariance(t *testing.T) {
	// Z-score normalization makes the result invariant to per-feature
	// affine rescaling.
	X := matrixWithBlock(4, 150, 3, 50, 20, 3)
	scaled := make([][]float64, len(X))
	for i, row := range X {
		r := make([]float64, len(row))
		for j, v := range row {
			r[j] = v*float64(100*(j+1)) + float64(j)*1e4
		}
		scaled[i] = r
	}
	a, err := Label(X, 20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Label(scaled, 20)
	if err != nil {
		t.Fatal(err)
	}
	if a.Index != b.Index {
		t.Errorf("affine feature rescaling changed the argmax: %d vs %d", a.Index, b.Index)
	}
	for i := range a.Distances {
		if math.Abs(a.Distances[i]-b.Distances[i]) > 1e-6*math.Max(1, a.Distances[i]) {
			t.Fatalf("distance curve not scale-invariant at %d", i)
		}
	}
}

func TestConstantFeatureHandled(t *testing.T) {
	// A zero-variance feature must not produce NaNs (z-score convention:
	// centered, undivided).
	X := matrixWithBlock(5, 100, 2, 30, 10, 3)
	for i := range X {
		X[i] = append(X[i], 7.5)
	}
	res, err := Label(X, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range res.Distances {
		if math.IsNaN(d) {
			t.Fatalf("NaN distance at %d", i)
		}
	}
	if d := res.Index - 30; d < -3 || d > 3 {
		t.Errorf("constant feature distracted the argmax: %d", res.Index)
	}
}

func TestDistanceCurvePeaksAtBlock(t *testing.T) {
	X := matrixWithBlock(6, 300, 4, 100, 30, 5)
	res, err := Label(X, 30)
	if err != nil {
		t.Fatal(err)
	}
	peak := res.Distances[res.Index]
	// Positions far from the block should score well below the peak.
	for _, i := range []int{0, 20, 200, 250} {
		if res.Distances[i] > 0.7*peak {
			t.Errorf("distance at %d (%g) too close to peak (%g)", i, res.Distances[i], peak)
		}
	}
}

func TestWindowMismatchStillDetects(t *testing.T) {
	// The supplied W is the patient *average*; the actual event is
	// shorter. Detection should still land on the event.
	X := matrixWithBlock(7, 300, 4, 120, 25, 4)
	res, err := Label(X, 40) // W larger than the true 25
	if err != nil {
		t.Fatal(err)
	}
	if res.Index < 95 || res.Index > 125 {
		t.Errorf("argmax %d should fall around the true event at 120 (±W mismatch)", res.Index)
	}
}

func TestLabelMatrixEndToEnd(t *testing.T) {
	// Full pipeline on a catalogue record: synth -> features -> label.
	p, err := chbmit.PatientByID("chb01")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := p.SeizureRecord(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Work on a 20-minute slice around the seizure to keep the test fast.
	sz := rec.Seizures[0]
	lo := sz.Start - 600
	hi := sz.Start + 600
	sub, err := rec.Slice(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	m, err := features.Extract10(sub, features.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	iv, res, err := LabelMatrix(m, time.Duration(p.AvgSeizureDuration*float64(time.Second)))
	if err != nil {
		t.Fatal(err)
	}
	truth := sub.Seizures[0]
	delta := (math.Abs(iv.Start-truth.Start) + math.Abs(iv.End-truth.End)) / 2
	if delta > 30 {
		t.Errorf("label [%g, %g] vs truth [%g, %g]: δ = %g s too large",
			iv.Start, iv.End, truth.Start, truth.End, delta)
	}
	if res.Window != 60 {
		t.Errorf("W = %d feature points, want 60 (avg duration 60 s at 1 s hop)", res.Window)
	}
}

func TestLabelMatrixErrors(t *testing.T) {
	if _, _, err := LabelMatrix(nil, time.Minute); err == nil {
		t.Error("nil matrix should fail")
	}
	m := &features.Matrix{}
	if _, _, err := LabelMatrix(m, time.Minute); err == nil {
		t.Error("empty matrix should fail")
	}
}

func TestStrideCeil(t *testing.T) {
	cases := map[int]int{0: 0, 1: 4, 3: 4, 4: 4, 5: 8, 8: 8}
	for in, want := range cases {
		if got := strideCeil(in); got != want {
			t.Errorf("strideCeil(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestInsertionSortOrStd(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{0, 1, 2, 31, 32, 33, 100, 1000} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		insertionSortOrStd(xs)
		for i := 1; i < n; i++ {
			if xs[i-1] > xs[i] {
				t.Fatalf("n=%d not sorted at %d", n, i)
			}
		}
	}
}
