package core

import (
	"math"
	"math/rand"
	"testing"
)

// twoBlockMatrix plants two separated shifted blocks.
func twoBlockMatrix(seed int64, l, f, pos1, pos2, w int, shift float64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, l)
	for i := range X {
		row := make([]float64, f)
		for j := range row {
			row[j] = rng.NormFloat64()
			if (i >= pos1 && i < pos1+w) || (i >= pos2 && i < pos2+w) {
				row[j] += shift
			}
		}
		X[i] = row
	}
	return X
}

func TestLabelKFindsBothEvents(t *testing.T) {
	X := twoBlockMatrix(1, 500, 5, 100, 350, 30, 4)
	results, err := LabelK(X, 30, 2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("want 2 candidates, got %d", len(results))
	}
	found := map[int]bool{}
	for _, r := range results {
		switch {
		case r.Index >= 95 && r.Index <= 105:
			found[100] = true
		case r.Index >= 345 && r.Index <= 355:
			found[350] = true
		default:
			t.Errorf("candidate at %d matches neither event", r.Index)
		}
	}
	if len(found) != 2 {
		t.Errorf("both events should be found, got %v", found)
	}
	// Descending distance order.
	d0 := results[0].Distances[results[0].Index]
	d1 := results[1].Distances[results[1].Index]
	if d0 < d1 {
		t.Error("candidates must be ordered by distance")
	}
}

func TestLabelKThresholdStopsEarly(t *testing.T) {
	// Single event: the second candidate would be background noise and
	// must be rejected by the relative threshold.
	X := matrixWithBlock(2, 400, 5, 150, 40, 5)
	results, err := LabelK(X, 40, 3, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Errorf("noise should not pass a 0.7 relative threshold, got %d candidates", len(results))
	}
}

func TestLabelKNoOverlap(t *testing.T) {
	X := matrixWithBlock(3, 300, 4, 120, 30, 4)
	results, err := LabelK(X, 30, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(results); i++ {
		for j := i + 1; j < len(results); j++ {
			lo1, hi1 := results[i].Index, results[i].Index+30
			lo2, hi2 := results[j].Index, results[j].Index+30
			if lo1 < hi2 && lo2 < hi1 {
				t.Errorf("candidates %d and %d overlap: [%d,%d) vs [%d,%d)",
					i, j, lo1, hi1, lo2, hi2)
			}
		}
	}
}

func TestLabelKErrors(t *testing.T) {
	X := matrixWithBlock(4, 100, 2, 30, 10, 2)
	if _, err := LabelK(X, 10, 0, 0.5); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := LabelK(X, 10, 2, -0.1); err == nil {
		t.Error("negative threshold should fail")
	}
	if _, err := LabelK(X, 10, 2, 1.5); err == nil {
		t.Error("threshold > 1 should fail")
	}
	if _, err := LabelK(nil, 10, 2, 0.5); err == nil {
		t.Error("empty matrix should fail")
	}
}

func TestLabelParallelMatchesSerial(t *testing.T) {
	for _, tc := range []struct{ l, f, w int }{
		{200, 1, 20}, {300, 10, 45}, {150, 3, 10},
	} {
		X := matrixWithBlock(int64(tc.l+tc.f), tc.l, tc.f, tc.l/4, tc.w, 3)
		serial, err := Label(X, tc.w)
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := LabelParallel(X, tc.w)
		if err != nil {
			t.Fatal(err)
		}
		if serial.Index != parallel.Index {
			t.Errorf("l=%d f=%d: argmax %d vs %d", tc.l, tc.f, serial.Index, parallel.Index)
		}
		for i := range serial.Distances {
			if math.Abs(serial.Distances[i]-parallel.Distances[i]) > 1e-12 {
				t.Fatalf("distance mismatch at %d", i)
			}
		}
	}
}

func TestLabelParallelValidates(t *testing.T) {
	if _, err := LabelParallel(nil, 5); err == nil {
		t.Error("empty matrix should fail")
	}
	X := matrixWithBlock(5, 50, 2, 10, 5, 2)
	if _, err := LabelParallel(X, 99); err == nil {
		t.Error("oversized window should fail")
	}
}
