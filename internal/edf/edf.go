// Package edf reads and writes the European Data Format (EDF), the format
// the CHB-MIT corpus is distributed in. Signals are stored as 16-bit
// integers with per-channel physical scaling; one data record holds one
// second of samples.
//
// Seizure annotations travel in a companion summary file (ReadSummary /
// WriteSummary) mirroring how CHB-MIT publishes its expert labels in
// chbNN-summary.txt sidecars rather than in the EDF itself.
package edf

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"selflearn/internal/signal"
)

const (
	headerSize       = 256
	signalHeaderSize = 256
	digMin           = -32768
	digMax           = 32767
)

// Write encodes rec as EDF. Each data record spans one second; the
// recording is truncated to a whole number of seconds. Channel data is
// scaled into the full 16-bit digital range using per-channel physical
// extrema.
func Write(w io.Writer, rec *signal.Recording) error {
	if err := rec.Validate(); err != nil {
		return fmt.Errorf("edf: %w", err)
	}
	if rec.SampleRate != math.Trunc(rec.SampleRate) {
		return fmt.Errorf("edf: non-integer sample rate %g not supported", rec.SampleRate)
	}
	spr := int(rec.SampleRate) // samples per record per channel
	nRecords := rec.Samples() / spr
	if nRecords == 0 {
		return errors.New("edf: recording shorter than one data record")
	}
	ns := len(rec.Channels)

	bw := bufio.NewWriter(w)
	pad := func(s string, n int) {
		if len(s) > n {
			s = s[:n]
		}
		bw.WriteString(s)
		for i := len(s); i < n; i++ {
			bw.WriteByte(' ')
		}
	}
	// Fixed header.
	pad("0", 8)
	pad(rec.PatientID, 80)
	pad(rec.RecordID, 80)
	pad("01.01.20", 8)
	pad("00.00.00", 8)
	pad(strconv.Itoa(headerSize+ns*signalHeaderSize), 8)
	pad("", 44)
	pad(strconv.Itoa(nRecords), 8)
	pad("1", 8) // one second per record
	pad(strconv.Itoa(ns), 4)

	// Per-channel physical extrema and scale factors.
	physMin := make([]float64, ns)
	physMax := make([]float64, ns)
	for c := range rec.Data {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range rec.Data[c][:nRecords*spr] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if lo == hi { // degenerate channel: widen to avoid zero division
			lo, hi = lo-1, hi+1
		}
		// Use the header's string representation (8 ASCII chars) as the
		// authoritative extrema so encoder and decoder share the exact
		// same scale. Widen outward so all samples stay in range.
		lo = math.Floor(lo*10) / 10
		hi = math.Ceil(hi*10) / 10
		loR, err := strconv.ParseFloat(formatFloat(lo), 64)
		if err != nil {
			return fmt.Errorf("edf: cannot encode physical minimum %g", lo)
		}
		hiR, err := strconv.ParseFloat(formatFloat(hi), 64)
		if err != nil {
			return fmt.Errorf("edf: cannot encode physical maximum %g", hi)
		}
		physMin[c], physMax[c] = loR, hiR
	}
	// Signal headers, field by field across all signals.
	for _, name := range rec.Channels {
		pad(name, 16)
	}
	for range rec.Channels {
		pad("AgAgCl electrode", 80)
	}
	for range rec.Channels {
		pad("uV", 8)
	}
	for c := range rec.Channels {
		pad(formatFloat(physMin[c]), 8)
	}
	for c := range rec.Channels {
		pad(formatFloat(physMax[c]), 8)
	}
	for range rec.Channels {
		pad(strconv.Itoa(digMin), 8)
	}
	for range rec.Channels {
		pad(strconv.Itoa(digMax), 8)
	}
	for range rec.Channels {
		pad("", 80)
	}
	for range rec.Channels {
		pad(strconv.Itoa(spr), 8)
	}
	for range rec.Channels {
		pad("", 32)
	}

	// Data records: int16 little-endian, channel-major within a record.
	buf := make([]byte, 2)
	for r := 0; r < nRecords; r++ {
		for c := 0; c < ns; c++ {
			scale := (physMax[c] - physMin[c]) / float64(digMax-digMin)
			base := r * spr
			for i := 0; i < spr; i++ {
				v := rec.Data[c][base+i]
				d := int(math.Round((v-physMin[c])/scale)) + digMin
				if d < digMin {
					d = digMin
				}
				if d > digMax {
					d = digMax
				}
				buf[0] = byte(uint16(int16(d)))
				buf[1] = byte(uint16(int16(d)) >> 8)
				bw.Write(buf)
			}
		}
	}
	return bw.Flush()
}

func formatFloat(v float64) string {
	s := strconv.FormatFloat(v, 'f', 1, 64)
	if len(s) > 8 {
		s = strconv.FormatFloat(v, 'g', 3, 64)
		if len(s) > 8 {
			s = s[:8]
		}
	}
	return s
}

// Read decodes an EDF stream produced by Write (or any single-rate,
// non-annotated EDF with one-second records).
func Read(r io.Reader) (*signal.Recording, error) {
	br := bufio.NewReader(r)
	head := make([]byte, headerSize)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("edf: short header: %w", err)
	}
	field := func(off, n int) string { return strings.TrimSpace(string(head[off : off+n])) }
	if v := field(0, 8); v != "0" {
		return nil, fmt.Errorf("edf: unsupported version %q", v)
	}
	patient := field(8, 80)
	recID := field(88, 80)
	nRecords, err := strconv.Atoi(field(236, 8))
	if err != nil || nRecords <= 0 {
		return nil, fmt.Errorf("edf: bad record count %q", field(236, 8))
	}
	recDur, err := strconv.ParseFloat(field(244, 8), 64)
	if err != nil || recDur <= 0 {
		return nil, fmt.Errorf("edf: bad record duration %q", field(244, 8))
	}
	ns, err := strconv.Atoi(field(252, 4))
	if err != nil || ns <= 0 {
		return nil, fmt.Errorf("edf: bad signal count %q", field(252, 4))
	}

	sig := make([]byte, ns*signalHeaderSize)
	if _, err := io.ReadFull(br, sig); err != nil {
		return nil, fmt.Errorf("edf: short signal header: %w", err)
	}
	// Signal header layout: consecutive blocks of ns fields.
	offset := 0
	readBlock := func(width int) []string {
		out := make([]string, ns)
		for i := 0; i < ns; i++ {
			out[i] = strings.TrimSpace(string(sig[offset : offset+width]))
			offset += width
		}
		return out
	}
	labels := readBlock(16)
	readBlock(80) // transducer
	readBlock(8)  // dimension
	physMinS := readBlock(8)
	physMaxS := readBlock(8)
	digMinS := readBlock(8)
	digMaxS := readBlock(8)
	readBlock(80) // prefiltering
	sprS := readBlock(8)
	readBlock(32) // reserved

	physMin := make([]float64, ns)
	physMax := make([]float64, ns)
	dMin := make([]int, ns)
	dMax := make([]int, ns)
	spr := make([]int, ns)
	for i := 0; i < ns; i++ {
		if physMin[i], err = strconv.ParseFloat(physMinS[i], 64); err != nil {
			return nil, fmt.Errorf("edf: bad physical minimum %q", physMinS[i])
		}
		if physMax[i], err = strconv.ParseFloat(physMaxS[i], 64); err != nil {
			return nil, fmt.Errorf("edf: bad physical maximum %q", physMaxS[i])
		}
		if dMin[i], err = strconv.Atoi(digMinS[i]); err != nil {
			return nil, fmt.Errorf("edf: bad digital minimum %q", digMinS[i])
		}
		if dMax[i], err = strconv.Atoi(digMaxS[i]); err != nil {
			return nil, fmt.Errorf("edf: bad digital maximum %q", digMaxS[i])
		}
		if dMax[i] <= dMin[i] {
			return nil, fmt.Errorf("edf: signal %d digital range [%d, %d] invalid", i, dMin[i], dMax[i])
		}
		if spr[i], err = strconv.Atoi(sprS[i]); err != nil || spr[i] <= 0 {
			return nil, fmt.Errorf("edf: bad samples-per-record %q", sprS[i])
		}
	}
	for i := 1; i < ns; i++ {
		if spr[i] != spr[0] {
			return nil, errors.New("edf: mixed per-channel rates not supported")
		}
	}
	fs := float64(spr[0]) / recDur

	rec := &signal.Recording{
		PatientID:  patient,
		RecordID:   recID,
		SampleRate: fs,
		Channels:   labels,
	}
	total := nRecords * spr[0]
	for i := 0; i < ns; i++ {
		rec.Data = append(rec.Data, make([]float64, 0, total))
	}
	raw := make([]byte, 2*spr[0])
	for r := 0; r < nRecords; r++ {
		for c := 0; c < ns; c++ {
			if _, err := io.ReadFull(br, raw); err != nil {
				return nil, fmt.Errorf("edf: truncated data record %d: %w", r, err)
			}
			scale := (physMax[c] - physMin[c]) / float64(dMax[c]-dMin[c])
			for i := 0; i < spr[0]; i++ {
				d := int16(uint16(raw[2*i]) | uint16(raw[2*i+1])<<8)
				v := physMin[c] + scale*float64(int(d)-dMin[c])
				rec.Data[c] = append(rec.Data[c], v)
			}
		}
	}
	if err := rec.Validate(); err != nil {
		return nil, fmt.Errorf("edf: decoded recording invalid: %w", err)
	}
	return rec, nil
}

// WriteSummary emits the CHB-MIT-style sidecar annotation listing for
// rec: one "Seizure n Start/End Time" pair per annotated seizure, in
// seconds.
func WriteSummary(w io.Writer, rec *signal.Recording) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "File Name: %s\n", rec.RecordID)
	fmt.Fprintf(bw, "Number of Seizures in File: %d\n", len(rec.Seizures))
	for i, s := range rec.Seizures {
		fmt.Fprintf(bw, "Seizure %d Start Time: %.3f seconds\n", i+1, s.Start)
		fmt.Fprintf(bw, "Seizure %d End Time: %.3f seconds\n", i+1, s.End)
	}
	return bw.Flush()
}

// ReadSummary parses a summary produced by WriteSummary and returns the
// seizure intervals.
func ReadSummary(r io.Reader) ([]signal.Interval, error) {
	sc := bufio.NewScanner(r)
	var starts, ends []float64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		var secs float64
		switch {
		case strings.Contains(line, "Start Time:"):
			if _, err := fmt.Sscanf(afterColon(line), "%f", &secs); err != nil {
				return nil, fmt.Errorf("edf: bad start line %q", line)
			}
			starts = append(starts, secs)
		case strings.Contains(line, "End Time:"):
			if _, err := fmt.Sscanf(afterColon(line), "%f", &secs); err != nil {
				return nil, fmt.Errorf("edf: bad end line %q", line)
			}
			ends = append(ends, secs)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(starts) != len(ends) {
		return nil, fmt.Errorf("edf: %d starts but %d ends", len(starts), len(ends))
	}
	var out []signal.Interval
	for i := range starts {
		iv := signal.Interval{Start: starts[i], End: ends[i]}
		if !iv.Valid() {
			return nil, fmt.Errorf("edf: invalid seizure interval %v", iv)
		}
		out = append(out, iv)
	}
	return out, nil
}

func afterColon(s string) string {
	if i := strings.Index(s, ":"); i >= 0 {
		return strings.TrimSpace(s[i+1:])
	}
	return s
}

// SaveRecording writes rec to dir as <RecordID>.edf plus a
// <RecordID>-summary.txt annotation sidecar.
func SaveRecording(dir string, rec *signal.Recording) error {
	if rec.RecordID == "" {
		return errors.New("edf: recording needs a RecordID to be saved")
	}
	f, err := os.Create(filepath.Join(dir, rec.RecordID+".edf"))
	if err != nil {
		return err
	}
	if err := Write(f, rec); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	s, err := os.Create(filepath.Join(dir, rec.RecordID+"-summary.txt"))
	if err != nil {
		return err
	}
	if err := WriteSummary(s, rec); err != nil {
		s.Close()
		return err
	}
	return s.Close()
}

// LoadRecording reads <name>.edf and, when present, its annotation
// sidecar from dir.
func LoadRecording(dir, name string) (*signal.Recording, error) {
	f, err := os.Open(filepath.Join(dir, name+".edf"))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rec, err := Read(f)
	if err != nil {
		return nil, err
	}
	s, err := os.Open(filepath.Join(dir, name+"-summary.txt"))
	if err != nil {
		if os.IsNotExist(err) {
			return rec, nil
		}
		return nil, err
	}
	defer s.Close()
	ivs, err := ReadSummary(s)
	if err != nil {
		return nil, err
	}
	rec.Seizures = ivs
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	return rec, nil
}
