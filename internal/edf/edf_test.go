package edf

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"selflearn/internal/signal"
	"selflearn/internal/synth"
)

func testRecording(t *testing.T, seconds float64) *signal.Recording {
	t.Helper()
	rec, err := synth.Generate(synth.RecordConfig{
		PatientID:  "chb01",
		RecordID:   "chb01_03",
		Seed:       11,
		Duration:   seconds,
		Background: synth.DefaultBackground(),
		Seizures: []synth.SeizureEvent{
			{Start: seconds / 3, Duration: seconds / 10, Config: synth.DefaultSeizure()},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestWriteReadRoundTrip(t *testing.T) {
	rec := testRecording(t, 60)
	var buf bytes.Buffer
	if err := Write(&buf, rec); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.PatientID != rec.PatientID || got.RecordID != rec.RecordID {
		t.Errorf("identity fields lost: %q %q", got.PatientID, got.RecordID)
	}
	if got.SampleRate != rec.SampleRate {
		t.Errorf("sample rate %g, want %g", got.SampleRate, rec.SampleRate)
	}
	if len(got.Channels) != 2 || got.Channels[0] != signal.ChannelF7T3 || got.Channels[1] != signal.ChannelF8T4 {
		t.Errorf("channels = %v", got.Channels)
	}
	if got.Samples() != rec.Samples() {
		t.Fatalf("samples %d, want %d", got.Samples(), rec.Samples())
	}
	// 16-bit quantization error must stay below ~2 quantization steps.
	for c := range rec.Data {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range rec.Data[c] {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		step := (hi - lo) / 65535
		var worst float64
		for i := range rec.Data[c] {
			worst = math.Max(worst, math.Abs(got.Data[c][i]-rec.Data[c][i]))
		}
		if worst > 2*step {
			t.Errorf("channel %d: worst error %g exceeds 2 LSB (%g)", c, worst, 2*step)
		}
	}
}

func TestWriteTruncatesPartialSecond(t *testing.T) {
	rec := testRecording(t, 61)
	rec.Data[0] = rec.Data[0][:60*256+100]
	rec.Data[1] = rec.Data[1][:60*256+100]
	rec.Seizures = nil // the clipped seizure may now exceed the truncated data
	var buf bytes.Buffer
	if err := Write(&buf, rec); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Samples() != 60*256 {
		t.Errorf("samples = %d, want %d (whole seconds only)", got.Samples(), 60*256)
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	if err := Write(&bytes.Buffer{}, &signal.Recording{SampleRate: 256}); err == nil {
		t.Error("invalid recording should fail")
	}
	rec := testRecording(t, 10)
	rec.SampleRate = 255.5
	rec.Seizures = nil
	if err := Write(&bytes.Buffer{}, rec); err == nil {
		t.Error("non-integer rate should fail")
	}
	short := &signal.Recording{
		SampleRate: 256,
		Channels:   []string{"a"},
		Data:       [][]float64{make([]float64, 100)},
	}
	if err := Write(&bytes.Buffer{}, short); err == nil {
		t.Error("sub-second recording should fail")
	}
}

func TestWriteConstantChannel(t *testing.T) {
	rec := &signal.Recording{
		PatientID:  "p",
		RecordID:   "r",
		SampleRate: 256,
		Channels:   []string{"flat"},
		Data:       [][]float64{make([]float64, 512)},
	}
	for i := range rec.Data[0] {
		rec.Data[0][i] = 5
	}
	var buf bytes.Buffer
	if err := Write(&buf, rec); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range got.Data[0] {
		if math.Abs(v-5) > 0.001 {
			t.Fatalf("flat channel decoded to %g", v)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not an edf")); err == nil {
		t.Error("short stream should fail")
	}
	junk := make([]byte, 256)
	for i := range junk {
		junk[i] = 'x'
	}
	if _, err := Read(bytes.NewReader(junk)); err == nil {
		t.Error("garbage header should fail")
	}
}

func TestReadTruncatedData(t *testing.T) {
	rec := testRecording(t, 10)
	var buf bytes.Buffer
	if err := Write(&buf, rec); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-1000]
	if _, err := Read(bytes.NewReader(cut)); err == nil {
		t.Error("truncated data should fail")
	}
}

func TestSummaryRoundTrip(t *testing.T) {
	rec := testRecording(t, 120)
	rec.Seizures = []signal.Interval{{Start: 10.5, End: 55.25}, {Start: 80, End: 99}}
	var buf bytes.Buffer
	if err := WriteSummary(&buf, rec); err != nil {
		t.Fatal(err)
	}
	ivs, err := ReadSummary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 2 {
		t.Fatalf("want 2 intervals, got %d", len(ivs))
	}
	for i := range ivs {
		if math.Abs(ivs[i].Start-rec.Seizures[i].Start) > 0.001 ||
			math.Abs(ivs[i].End-rec.Seizures[i].End) > 0.001 {
			t.Errorf("interval %d = %v, want %v", i, ivs[i], rec.Seizures[i])
		}
	}
}

func TestReadSummaryErrors(t *testing.T) {
	if _, err := ReadSummary(strings.NewReader("Seizure 1 Start Time: abc seconds\n")); err == nil {
		t.Error("bad number should fail")
	}
	if _, err := ReadSummary(strings.NewReader("Seizure 1 Start Time: 5 seconds\n")); err == nil {
		t.Error("unbalanced start/end should fail")
	}
	if _, err := ReadSummary(strings.NewReader(
		"Seizure 1 Start Time: 50 seconds\nSeizure 1 End Time: 10 seconds\n")); err == nil {
		t.Error("inverted interval should fail")
	}
	ivs, err := ReadSummary(strings.NewReader("File Name: x\nNumber of Seizures in File: 0\n"))
	if err != nil || len(ivs) != 0 {
		t.Error("empty summary should parse to no intervals")
	}
}

func TestSaveLoadRecording(t *testing.T) {
	dir := t.TempDir()
	rec := testRecording(t, 30)
	if err := SaveRecording(dir, rec); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRecording(dir, rec.RecordID)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Seizures) != 1 {
		t.Fatalf("annotations not restored: %v", got.Seizures)
	}
	if math.Abs(got.Seizures[0].Start-rec.Seizures[0].Start) > 0.001 {
		t.Errorf("seizure start %g, want %g", got.Seizures[0].Start, rec.Seizures[0].Start)
	}
	if _, err := LoadRecording(dir, "missing"); err == nil {
		t.Error("missing file should fail")
	}
}

func TestSaveRequiresRecordID(t *testing.T) {
	rec := testRecording(t, 10)
	rec.RecordID = ""
	if err := SaveRecording(t.TempDir(), rec); err == nil {
		t.Error("empty RecordID should fail")
	}
}

func TestLoadWithoutSummaryIsOK(t *testing.T) {
	dir := t.TempDir()
	rec := testRecording(t, 10)
	rec.Seizures = nil
	rec.RecordID = "plain"
	if err := SaveRecording(dir, rec); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRecording(dir, "plain")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Seizures) != 0 {
		t.Error("expected no annotations")
	}
}

func TestHeaderSizes(t *testing.T) {
	// The EDF header must be exactly 256 + ns·256 bytes.
	rec := testRecording(t, 5)
	rec.Seizures = nil
	var buf bytes.Buffer
	if err := Write(&buf, rec); err != nil {
		t.Fatal(err)
	}
	wantHeader := 256 + 2*256
	wantTotal := wantHeader + 5 /*records*/ *2 /*channels*/ *256 /*samples*/ *2 /*bytes*/
	if buf.Len() != wantTotal {
		t.Errorf("stream length %d, want %d", buf.Len(), wantTotal)
	}
	head := buf.Bytes()[:8]
	if strings.TrimSpace(string(head)) != "0" {
		t.Errorf("version field = %q", head)
	}
}

func TestRandomRecordingsRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 5; trial++ {
		n := (rng.Intn(10) + 2) * 256
		rec := &signal.Recording{
			PatientID:  "px",
			RecordID:   "rx",
			SampleRate: 256,
			Channels:   []string{"c1", "c2", "c3"},
		}
		for c := 0; c < 3; c++ {
			d := make([]float64, n)
			for i := range d {
				d[i] = rng.NormFloat64() * 100
			}
			rec.Data = append(rec.Data, d)
		}
		var buf bytes.Buffer
		if err := Write(&buf, rec); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for c := range rec.Data {
			for i := range rec.Data[c] {
				if math.Abs(got.Data[c][i]-rec.Data[c][i]) > 0.05 {
					t.Fatalf("trial %d channel %d sample %d error %g",
						trial, c, i, got.Data[c][i]-rec.Data[c][i])
				}
			}
		}
	}
}
