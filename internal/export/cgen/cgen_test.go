package cgen

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"selflearn/internal/ml/forest"
)

func trainedForest(t *testing.T) (*forest.Forest, [][]float64, []bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	var X [][]float64
	var y []bool
	for i := 0; i < 400; i++ {
		pos := i%3 == 0
		base := 0.0
		if pos {
			base = 3
		}
		X = append(X, []float64{base + rng.NormFloat64(), base + rng.NormFloat64(), rng.NormFloat64()})
		y = append(y, pos)
	}
	cfg := forest.DefaultConfig()
	cfg.NumTrees = 15
	f, err := forest.Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f, X, y
}

func TestFlattenPredictMatchesForest(t *testing.T) {
	f, X, _ := trainedForest(t)
	spec, err := Flatten(f)
	if err != nil {
		t.Fatal(err)
	}
	if spec.NumFeatures != 3 || len(spec.Roots) != 15 {
		t.Fatalf("spec shape: %d features, %d roots", spec.NumFeatures, len(spec.Roots))
	}
	rng := rand.New(rand.NewSource(6))
	mismatches := 0
	probe := append([][]float64(nil), X...)
	for i := 0; i < 500; i++ {
		probe = append(probe, []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3, rng.NormFloat64() * 3})
	}
	for _, x := range probe {
		got, err := spec.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if got != f.Predict(x) {
			mismatches++
		}
	}
	if mismatches > 0 {
		t.Errorf("%d/%d predictions changed after flattening", mismatches, len(probe))
	}
}

func TestPredictDimensionCheck(t *testing.T) {
	f, _, _ := trainedForest(t)
	spec, err := Flatten(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.Predict([]float64{1}); err == nil {
		t.Error("wrong dimensionality should fail")
	}
}

func TestWriteCStructure(t *testing.T) {
	f, _, _ := trainedForest(t)
	spec, err := Flatten(f)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := spec.WriteC(&buf, "seiz_rf"); err != nil {
		t.Fatal(err)
	}
	src := buf.String()
	for _, want := range []string{
		"#include <stdint.h>",
		"#define SEIZ_RF_NUM_FEATURES 3",
		"#define SEIZ_RF_NUM_TREES 15",
		"static const int16_t seiz_rf_feature[]",
		"static const float seiz_rf_threshold[]",
		"static const int32_t seiz_rf_left[]",
		"static const int32_t seiz_rf_right[]",
		"static const int32_t seiz_rf_roots[]",
		"int seiz_rf_predict(const float *x)",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated C missing %q", want)
		}
	}
	// No dangling commas before closing braces.
	if strings.Contains(src, ",\n};") {
		t.Error("trailing comma before array close")
	}
}

func TestWriteCRejectsBadPrefix(t *testing.T) {
	f, _, _ := trainedForest(t)
	spec, err := Flatten(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "9abc", "has-dash", "has space"} {
		if err := spec.WriteC(&bytes.Buffer{}, bad); err == nil {
			t.Errorf("prefix %q should be rejected", bad)
		}
	}
}

func TestFlashBudget(t *testing.T) {
	f, _, _ := trainedForest(t)
	spec, err := Flatten(f)
	if err != nil {
		t.Fatal(err)
	}
	bytes := spec.FlashBytes()
	if bytes <= 0 {
		t.Fatal("flash footprint must be positive")
	}
	// A 15-tree window classifier must fit comfortably in the
	// STM32L151's 384 KB flash.
	if bytes > 384*1024/2 {
		t.Errorf("model footprint %d B implausibly large", bytes)
	}
}

func TestFlattenEmptyForestFails(t *testing.T) {
	var f forest.Forest
	if _, err := Flatten(&f); err == nil {
		t.Error("empty forest should fail")
	}
}
